package streamkm

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/decay"
	"streamkm/internal/geom"
	"streamkm/internal/persist"
	"streamkm/internal/registry"
	"streamkm/internal/trace"
	"streamkm/internal/window"
)

// This file is the serving layer's backend factory: every layer above the
// library (registry, HTTP server, daemon, bench tooling) creates and
// restores clustering backends through a BackendSpec instead of
// hardcoding a concrete constructor, so a multi-tenant daemon can run
// infinite-stream, forward-decay and sliding-window tenants side by side
// — and every variant survives a restart through the same snapshot
// machinery.

// BackendType selects a serving-backend variant.
type BackendType string

// Available backend variants.
const (
	// BackendConcurrent is the infinite-stream default: sharded ingest
	// with the cached-centers query fast path (Concurrent).
	BackendConcurrent BackendType = "concurrent"
	// BackendDecayed weights points with forward exponential decay —
	// influence halves every HalfLife arrivals (internal/decay), the
	// smooth answer to concept drift.
	BackendDecayed BackendType = "decayed"
	// BackendWindowed clusters only the last WindowN arrivals via a
	// Braverman-style exponential histogram of coresets
	// (internal/window), the hard-horizon answer to recency.
	BackendWindowed BackendType = "windowed"
)

// BackendTypes lists every backend variant.
func BackendTypes() []BackendType {
	return []BackendType{BackendConcurrent, BackendDecayed, BackendWindowed}
}

// BackendSpec identifies one serving backend: the variant, the summary
// structure, and the variant-specific knobs. Zero-valued fields select
// defaults (Type concurrent, Algo CC, Shards GOMAXPROCS); HalfLife is
// required for decayed backends and WindowN for windowed ones. The JSON
// field names are the wire format PUT /streams/{id} accepts.
type BackendSpec struct {
	// Type selects the variant; empty means BackendConcurrent.
	Type BackendType `json:"backend,omitempty"`
	// Algo is the summary structure (CT, CC or RCC) for concurrent and
	// decayed backends; ignored by windowed ones (their histogram is not
	// built on the coreset tree). Empty means AlgoCC.
	Algo Algo `json:"algo,omitempty"`
	// K is the number of centers queries answer. Required (>= 1).
	K int `json:"k,omitempty"`
	// Dim is the expected point dimension; 0 adopts the first point's.
	Dim int `json:"dim,omitempty"`
	// Shards is the ingest parallelism, for every variant: concurrent
	// backends shard their stationary structures, decayed and windowed
	// ones run the sharded sequencing pipeline (per-lane sub-structures
	// merged at query time). 0 means GOMAXPROCS.
	Shards int `json:"shards,omitempty"`
	// HalfLife is the decay half-life in arrival counts (decayed only;
	// exactly one of HalfLife and HalfLifeSeconds must be > 0).
	HalfLife float64 `json:"half_life,omitempty"`
	// HalfLifeSeconds is the decay half-life in wall-clock seconds
	// (decayed only; mutually exclusive with HalfLife). A point's
	// influence halves every HalfLifeSeconds of elapsed time regardless
	// of arrival rate, with timestamps taken from a monotonic clock at
	// sequencing time.
	HalfLifeSeconds float64 `json:"half_life_seconds,omitempty"`
	// WindowN is the sliding-window length in points (windowed only;
	// >= the coreset bucket size).
	WindowN int64 `json:"window_n,omitempty"`

	// Per-tenant quota knobs (0 = unlimited), valid on every variant.
	// The backends themselves never enforce them — enforcement lives at
	// the registry boundary — but the spec carries them so they persist
	// through snapshots and travel with migrated tenants.
	PointsPerSec     float64 `json:"points_per_sec,omitempty"`
	BytesPerSec      float64 `json:"bytes_per_sec,omitempty"`
	MaxResidentBytes int64   `json:"max_resident_bytes,omitempty"`
}

// hasQuota reports whether any quota knob is set, i.e. whether the spec
// needs the quota-carrying v3 envelope even for a concurrent backend.
func (s BackendSpec) hasQuota() bool {
	return s.PointsPerSec != 0 || s.BytesPerSec != 0 || s.MaxResidentBytes != 0
}

// Backend is a servable streaming clusterer: the registry/HTTP surface
// (batch ingest, centers, counters) plus snapshot/restore and spec
// introspection. Implementations are safe for concurrent use.
type Backend interface {
	// AddBatch observes a batch of unit-weight points.
	AddBatch(pts [][]float64)
	// AddWeighted observes one point carrying weight w > 0.
	AddWeighted(p []float64, w float64)
	// Centers returns the current cluster centers (copies).
	Centers() [][]float64
	// Count returns the number of points observed so far.
	Count() int64
	// PointsStored reports memory use in stored points.
	PointsStored() int
	// Name identifies the algorithm in reports.
	Name() string
	// Snapshot serializes the backend's complete logical state to w; the
	// result restores via Restore with a matching (or zero) spec.
	Snapshot(w io.Writer) error
	// Spec reports the spec this backend was opened or restored with.
	Spec() BackendSpec
}

// withDefaults materializes the spec's defaults and validates the
// variant-specific knobs.
func (s BackendSpec) withDefaults() (BackendSpec, error) {
	if s.Type == "" {
		s.Type = BackendConcurrent
	}
	if s.Algo == "" {
		s.Algo = AlgoCC
	}
	if s.Shards < 1 {
		s.Shards = runtime.GOMAXPROCS(0)
	}
	// Irrelevant knobs are rejected, not ignored: a stray half_life on a
	// windowed spec would otherwise be recorded in the stream config,
	// fail the PUT-vs-restore match on the next rehydration, and brick
	// the tenant long after the PUT was acknowledged.
	switch s.Type {
	case BackendConcurrent:
		if s.HalfLife != 0 || s.HalfLifeSeconds != 0 || s.WindowN != 0 {
			return s, fmt.Errorf("streamkm: concurrent backend takes neither half_life (%v/%vs) nor window_n (%d)", s.HalfLife, s.HalfLifeSeconds, s.WindowN)
		}
	case BackendDecayed:
		if s.HalfLife < 0 || s.HalfLifeSeconds < 0 {
			return s, fmt.Errorf("streamkm: decayed backend half-lives must be positive, got half_life %v, half_life_seconds %v", s.HalfLife, s.HalfLifeSeconds)
		}
		if (s.HalfLife > 0) == (s.HalfLifeSeconds > 0) {
			return s, fmt.Errorf("streamkm: decayed backend requires exactly one of half_life (%v) and half_life_seconds (%v)", s.HalfLife, s.HalfLifeSeconds)
		}
		if s.WindowN != 0 {
			return s, fmt.Errorf("streamkm: decayed backend takes no window_n, got %d", s.WindowN)
		}
	case BackendWindowed:
		if s.WindowN < 1 {
			return s, fmt.Errorf("streamkm: windowed backend requires window_n >= 1, got %d", s.WindowN)
		}
		if s.HalfLife != 0 || s.HalfLifeSeconds != 0 {
			return s, fmt.Errorf("streamkm: windowed backend takes no half_life, got %v/%vs", s.HalfLife, s.HalfLifeSeconds)
		}
	default:
		return s, fmt.Errorf("streamkm: unknown backend type %q (want concurrent, decayed or windowed)", s.Type)
	}
	if s.Dim < 0 {
		return s, fmt.Errorf("streamkm: backend dim must be >= 0, got %d", s.Dim)
	}
	if s.PointsPerSec < 0 {
		return s, fmt.Errorf("streamkm: points_per_sec must be >= 0, got %v", s.PointsPerSec)
	}
	if s.BytesPerSec < 0 {
		return s, fmt.Errorf("streamkm: bytes_per_sec must be >= 0, got %v", s.BytesPerSec)
	}
	if s.MaxResidentBytes < 0 {
		return s, fmt.Errorf("streamkm: max_resident_bytes must be >= 0, got %d", s.MaxResidentBytes)
	}
	return s, nil
}

// check compares a requested spec against the spec recovered from a
// snapshot: every nonzero requested field must match, so a PUT that
// declares "decayed, half-life 1000" can never silently resume a
// concurrent (or differently tuned) snapshot. Shards is exempt — a
// restored concurrent backend keeps the snapshot's shard count by
// design. Quotas are exempt too: they are operator policy, not model
// identity, and must be adjustable without bricking a tenant whose
// snapshot recorded the old limit.
func (s BackendSpec) check(got BackendSpec) error {
	if s.Type != "" && s.Type != got.Type {
		return fmt.Errorf("streamkm: snapshot holds a %s backend, spec wants %s", got.Type, s.Type)
	}
	if s.Algo != "" && got.Algo != "" && s.Algo != got.Algo {
		return fmt.Errorf("streamkm: snapshot algo %s does not match spec algo %s", got.Algo, s.Algo)
	}
	if s.K != 0 && s.K != got.K {
		return fmt.Errorf("streamkm: snapshot k=%d does not match spec k=%d", got.K, s.K)
	}
	if s.Dim > 0 && got.Dim > 0 && s.Dim != got.Dim {
		return fmt.Errorf("streamkm: snapshot dimension %d does not match spec dim %d", got.Dim, s.Dim)
	}
	if s.HalfLife != 0 && s.HalfLife != got.HalfLife {
		return fmt.Errorf("streamkm: snapshot half-life %v does not match spec half_life %v", got.HalfLife, s.HalfLife)
	}
	if s.HalfLifeSeconds != 0 && s.HalfLifeSeconds != got.HalfLifeSeconds {
		return fmt.Errorf("streamkm: snapshot wall-clock half-life %v does not match spec half_life_seconds %v", got.HalfLifeSeconds, s.HalfLifeSeconds)
	}
	if s.WindowN != 0 && s.WindowN != got.WindowN {
		return fmt.Errorf("streamkm: snapshot window %d does not match spec window_n %d", got.WindowN, s.WindowN)
	}
	return nil
}

// SpecFromStreamConfig maps the registry's wire-form stream
// configuration onto a backend spec. shards is the serving layer's
// default per-stream ingest parallelism, overridden by the stream's
// own "shards" knob when set (0 keeps the package default, or — on
// restore — the snapshot's recorded layout). The single definition
// here keeps the daemon, tests and examples from each hand-maintaining
// the field mapping.
func SpecFromStreamConfig(sc registry.StreamConfig, shards int) BackendSpec {
	if sc.Shards > 0 {
		shards = sc.Shards
	}
	return BackendSpec{
		Type:             BackendType(sc.Backend),
		Algo:             Algo(sc.Algo),
		K:                sc.K,
		Dim:              sc.Dim,
		Shards:           shards,
		HalfLife:         sc.HalfLife,
		HalfLifeSeconds:  sc.HalfLifeSeconds,
		WindowN:          sc.WindowN,
		PointsPerSec:     sc.PointsPerSec,
		BytesPerSec:      sc.BytesPerSec,
		MaxResidentBytes: sc.MaxResidentBytes,
	}
}

// StreamConfig is the inverse mapping, for reporting a backend's actual
// spec back to a registry.
func (s BackendSpec) StreamConfig() registry.StreamConfig {
	return registry.StreamConfig{
		Backend:          string(s.Type),
		Algo:             string(s.Algo),
		K:                s.K,
		Dim:              s.Dim,
		Shards:           s.Shards,
		HalfLife:         s.HalfLife,
		HalfLifeSeconds:  s.HalfLifeSeconds,
		WindowN:          s.WindowN,
		PointsPerSec:     s.PointsPerSec,
		BytesPerSec:      s.BytesPerSec,
		MaxResidentBytes: s.MaxResidentBytes,
	}
}

// Open creates a fresh serving backend from a spec. cfg supplies the
// shared tuning (BucketSize, MergeDegree, Seed, Builder, query options,
// Alpha for the concurrent cache); cfg.K is overridden by spec.K.
func Open(spec BackendSpec, cfg Config) (Backend, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg.K = spec.K
	switch spec.Type {
	case BackendConcurrent:
		c, err := NewConcurrent(spec.Algo, spec.Shards, cfg)
		if err != nil {
			return nil, err
		}
		c.dim = spec.Dim
		if spec.hasQuota() {
			return &concurrentBackend{Concurrent: c, spec: spec}, nil
		}
		return c, nil
	case BackendDecayed:
		switch spec.Algo {
		case AlgoCT, AlgoCC, AlgoRCC:
		default:
			return nil, fmt.Errorf("streamkm: decayed backend supports CT, CC and RCC, not %q", spec.Algo)
		}
		cfg, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		b, err := cfg.builder()
		if err != nil {
			return nil, err
		}
		lambda, wall := ln2/spec.HalfLife, false
		if spec.HalfLifeSeconds > 0 {
			lambda, wall = ln2/spec.HalfLifeSeconds, true
		}
		sh, err := decay.NewSharded(spec.Shards, cfg.K, lambda, cfg.Seed, cfg.queryOptions(),
			decayDriverFactory(spec.Algo, cfg, b))
		if err != nil {
			return nil, err
		}
		return &decayedBackend{spec: spec, sh: sh, alpha: cfg.Alpha, wall: wall, epoch: time.Now()}, nil
	case BackendWindowed:
		cfg, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		b, err := cfg.builder()
		if err != nil {
			return nil, err
		}
		sh, err := window.NewSharded(spec.Shards, cfg.K, cfg.BucketSize, cfg.MergeDegree,
			spec.WindowN, b, cfg.Seed, cfg.queryOptions())
		if err != nil {
			return nil, err
		}
		spec.Algo = ""
		return &windowedBackend{spec: spec, sh: sh, alpha: cfg.Alpha}, nil
	}
	return nil, fmt.Errorf("streamkm: unknown backend type %q", spec.Type)
}

// decayDriverFactory builds the per-lane driver constructor for the
// sharded decay pipeline — the same structure wiring as newShardedInner,
// but returning the raw *core.Driver the decay shard wraps. cfg must
// already carry defaults.
func decayDriverFactory(algo Algo, cfg Config, b coreset.Builder) func(lane int, seed int64) *core.Driver {
	return func(_ int, seed int64) *core.Driver {
		rng := rand.New(rand.NewSource(seed))
		var s core.Structure
		switch algo {
		case AlgoCT:
			s = core.NewCT(cfg.MergeDegree, cfg.BucketSize, b, rng)
		case AlgoCC:
			s = core.NewCC(cfg.MergeDegree, cfg.BucketSize, b, rng)
		default:
			s = core.NewRCC(cfg.RCCOrder, cfg.BucketSize, b, rng)
		}
		return core.NewDriver(s, cfg.K, cfg.BucketSize, rng, cfg.queryOptions())
	}
}

// Restore reconstructs a serving backend previously written by a
// Backend's Snapshot (any variant, any format generation: bare v2
// sharded envelopes restore as concurrent backends, v3 typed envelopes
// as whatever they declare). spec's nonzero fields are validated against
// the snapshot — a mismatch is an error, never a silently wrong model;
// pass a zero spec to adopt whatever the file holds. cfg supplies the
// non-serialized pieces (Seed, Builder, query options), as for Load.
func Restore(spec BackendSpec, r io.Reader, cfg Config) (Backend, error) {
	env, err := persist.Load(r)
	if err != nil {
		return nil, err
	}
	var b Backend
	switch env.Kind {
	case persist.KindSharded:
		b, err = concurrentFromSharded(env, cfg)
	case persist.KindBackend:
		b, err = backendFromEnvelope(env.Backend, cfg)
	default:
		return nil, fmt.Errorf("streamkm: snapshot holds a single %q clusterer, not a serving backend (use Load)", env.Kind)
	}
	if err != nil {
		return nil, err
	}
	if err := spec.check(b.Spec()); err != nil {
		return nil, err
	}
	return b, nil
}

// backendFromEnvelope dispatches a validated v3 backend envelope to the
// variant's restore path.
func backendFromEnvelope(bs *persist.BackendSnapshot, cfg Config) (Backend, error) {
	if err := persist.ValidateBackend(bs); err != nil {
		return nil, err
	}
	switch bs.Type {
	case persist.BackendConcurrent:
		c, err := concurrentFromSharded(persist.Envelope{Kind: persist.KindSharded, Sharded: bs.Sharded}, cfg)
		if err != nil {
			return nil, err
		}
		if spec := specFromSnapshot(bs); spec.hasQuota() {
			return &concurrentBackend{Concurrent: c, spec: spec}, nil
		}
		return c, nil
	case persist.BackendDecayed:
		cfg.K = 1
		cfg, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		builder, err := cfg.builder()
		if err != nil {
			return nil, err
		}
		var (
			sh   *decay.Sharded
			wall bool
		)
		if len(bs.DecayedShards) > 0 {
			// v4 sharded snapshot: per-lane sub-envelopes plus sequencer
			// cursors restore the pipeline exactly as quiesced.
			lambda := ln2 / bs.HalfLife
			if bs.HalfLifeSeconds > 0 {
				lambda, wall = ln2/bs.HalfLifeSeconds, true
			}
			shards, err := persist.RestoreDecayedShards(bs.DecayedShards, lambda, cfg.Seed, builder, cfg.queryOptions())
			if err != nil {
				return nil, err
			}
			sh, err = decay.NewShardedFromShards(bs.K, lambda, cfg.Seed, cfg.queryOptions(),
				shards, bs.Clock, bs.RR, bs.Count)
			if err != nil {
				return nil, err
			}
		} else {
			// Legacy single-lock snapshot: the restored clusterer becomes
			// lane 0 of a one-lane pipeline, continuing the identical
			// arrival-count weight timeline.
			dc, err := persist.RestoreDecayed(bs.Decayed, cfg.Seed, builder, cfg.queryOptions())
			if err != nil {
				return nil, err
			}
			lane0, err := dc.Shard(float64(bs.Count) + 1)
			if err != nil {
				return nil, err
			}
			sh, err = decay.NewShardedFromShards(bs.K, lane0.Lambda(), cfg.Seed, cfg.queryOptions(),
				[]*decay.Shard{lane0}, bs.Count, 0, bs.Count)
			if err != nil {
				return nil, err
			}
		}
		spec := specFromSnapshot(bs)
		spec.Shards = sh.NumLanes()
		return &decayedBackend{spec: spec, sh: sh, alpha: cfg.Alpha,
			wall: wall, epoch: time.Now(), base: bs.ElapsedSeconds}, nil
	case persist.BackendWindowed:
		cfg.K = 1
		cfg, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		builder, err := cfg.builder()
		if err != nil {
			return nil, err
		}
		var sh *window.Sharded
		if len(bs.WindowShards) > 0 {
			subs, err := persist.RestoreWindowShards(bs.WindowShards, cfg.Seed, builder, cfg.queryOptions())
			if err != nil {
				return nil, err
			}
			sh, err = window.NewShardedFromLanes(bs.K, bs.WindowN, cfg.Seed, cfg.queryOptions(),
				subs, bs.Clock, bs.RR, bs.Count)
			if err != nil {
				return nil, err
			}
		} else {
			// Legacy single-lock snapshot: lane 0 of a one-lane pipeline.
			wc, err := persist.RestoreWindowed(bs.Window, cfg.Seed, builder, cfg.queryOptions())
			if err != nil {
				return nil, err
			}
			sh, err = window.NewShardedFromLanes(bs.K, bs.WindowN, cfg.Seed, cfg.queryOptions(),
				[]*window.Clusterer{wc}, bs.Count, 0, bs.Count)
			if err != nil {
				return nil, err
			}
		}
		spec := specFromSnapshot(bs)
		spec.Shards = sh.NumLanes()
		return &windowedBackend{spec: spec, sh: sh, alpha: cfg.Alpha}, nil
	}
	return nil, fmt.Errorf("streamkm: unknown backend type %q in snapshot", bs.Type)
}

// specFromSnapshot recovers the spec recorded in a backend envelope.
func specFromSnapshot(bs *persist.BackendSnapshot) BackendSpec {
	return BackendSpec{
		Type:             BackendType(bs.Type),
		Algo:             Algo(bs.Algo),
		K:                bs.K,
		Dim:              bs.Dim,
		Shards:           bs.Shards,
		HalfLife:         bs.HalfLife,
		HalfLifeSeconds:  bs.HalfLifeSeconds,
		WindowN:          bs.WindowN,
		PointsPerSec:     bs.PointsPerSec,
		BytesPerSec:      bs.BytesPerSec,
		MaxResidentBytes: bs.MaxResidentBytes,
	}
}

// Spec reports the backend spec of a Concurrent, making it a Backend.
// Dim is the dimension recorded in the snapshot it was restored from (or
// passed to Open), 0 otherwise.
func (c *Concurrent) Spec() BackendSpec {
	return BackendSpec{
		Type:   BackendConcurrent,
		Algo:   c.algo,
		K:      c.k,
		Dim:    c.dim,
		Shards: c.NumShards(),
	}
}

// concurrentBackend wraps a Concurrent whose spec carries per-tenant
// quota knobs. The quotas are serving-layer policy the core clusterer
// knows nothing about, so the wrapper overrides only Spec (reporting
// them) and Snapshot (recording them in a v3 typed envelope around the
// usual sharded payload; a bare Concurrent keeps writing the v2 sharded
// envelope unchanged, so pre-quota golden snapshots stay valid).
type concurrentBackend struct {
	*Concurrent
	spec BackendSpec
}

func (b *concurrentBackend) Spec() BackendSpec {
	s := b.Concurrent.Spec()
	s.PointsPerSec = b.spec.PointsPerSec
	s.BytesPerSec = b.spec.BytesPerSec
	s.MaxResidentBytes = b.spec.MaxResidentBytes
	return s
}

func (b *concurrentBackend) Snapshot(w io.Writer) error {
	env, err := b.Concurrent.snapshotEnvelope()
	if err != nil {
		return err
	}
	s := env.Sharded
	return persist.Save(w, persist.Envelope{Kind: persist.KindBackend, Backend: &persist.BackendSnapshot{
		Type:             persist.BackendConcurrent,
		Algo:             string(b.Concurrent.Algo()),
		K:                s.K,
		Dim:              s.Dim,
		Shards:           len(s.Shards),
		Count:            s.Count,
		PointsPerSec:     b.spec.PointsPerSec,
		BytesPerSec:      b.spec.BytesPerSec,
		MaxResidentBytes: b.spec.MaxResidentBytes,
		Sharded:          s,
	}})
}

// decayedBackend serves the sharded forward-decay pipeline: the tiny
// sequencing step stamps every batch's global decay times (arrival
// indices, or monotonic wall-clock seconds in HalfLifeSeconds mode),
// coreset insertion proceeds under per-lane locks, and queries merge the
// lane coresets — rescaled to a common reference time — behind the same
// cached-centers single-flight fast path as Concurrent. The cache
// freshness test keys on arrival count only: with no new arrivals, decay
// scales every weight by the same factor, and k-means centers are
// invariant under uniform weight scaling, so a count-fresh entry stays
// correct even as wall-clock time passes.
type decayedBackend struct {
	spec  BackendSpec
	sh    *decay.Sharded
	alpha float64

	// Wall-clock mode (HalfLifeSeconds): decay times are seconds since
	// the stream epoch, read from Go's monotonic clock. base carries the
	// seconds accumulated before the last restore, so a restarted stream
	// continues the same timeline rather than rejuvenating its points.
	wall  bool
	epoch time.Time
	base  float64

	cache        atomic.Pointer[centersSnapshot]
	refreshMu    sync.Mutex // single-flight guard for recomputation
	hits, misses atomic.Int64
}

// now returns the stream-relative timestamp for wall-clock decay,
// captured at sequencing time.
func (b *decayedBackend) now() float64 {
	return b.base + time.Since(b.epoch).Seconds()
}

func (b *decayedBackend) addBatch(wps []geom.Weighted) {
	if b.wall {
		b.sh.AddBatchWall(b.now(), wps)
	} else {
		b.sh.AddBatch(wps)
	}
}

func (b *decayedBackend) AddBatch(pts [][]float64) {
	if len(pts) == 0 {
		return
	}
	wps := make([]geom.Weighted, len(pts))
	for i, p := range pts {
		wps[i] = geom.Weighted{P: geom.Point(p), W: 1}
	}
	b.addBatch(wps)
}

func (b *decayedBackend) AddWeighted(p []float64, w float64) {
	b.addBatch([]geom.Weighted{{P: geom.Point(p), W: w}})
}

func (b *decayedBackend) Centers() [][]float64 {
	return b.CentersContext(context.Background())
}

// CentersContext is Centers carrying the request context, so the
// shard-merge stage of a cache-miss recomputation lands in the request's
// trace span.
func (b *decayedBackend) CentersContext(ctx context.Context) [][]float64 {
	n := b.sh.Count()
	if snap := b.cache.Load(); snap != nil && fresh(n, snap.count, b.alpha) {
		b.hits.Add(1)
		return clonePoints(snap.centers)
	}
	b.misses.Add(1)
	b.refreshMu.Lock()
	defer b.refreshMu.Unlock()
	if snap := b.cache.Load(); snap != nil && fresh(n, snap.count, b.alpha) {
		return clonePoints(snap.centers)
	}
	return clonePoints(b.refreshLocked(ctx))
}

func (b *decayedBackend) Refresh() [][]float64 {
	return b.RefreshContext(context.Background())
}

// RefreshContext recomputes the centers unconditionally, replacing the
// cache; the merge is staged into ctx's trace span.
func (b *decayedBackend) RefreshContext(ctx context.Context) [][]float64 {
	b.refreshMu.Lock()
	defer b.refreshMu.Unlock()
	return clonePoints(b.refreshLocked(ctx))
}

// refreshLocked gathers and rescales the lane coresets (the shard-merge
// trace stage), runs the query k-means over the union, and installs the
// new cache entry. Caller holds refreshMu.
func (b *decayedBackend) refreshLocked(ctx context.Context) []Point {
	count := b.sh.Count()
	done := trace.FromContext(ctx).StartStage("shard-merge")
	union := b.sh.Coreset()
	done()
	cs := b.sh.CoresetCenters(union)
	centers := make([]Point, len(cs))
	for i, p := range cs {
		centers[i] = []float64(p)
	}
	b.cache.Store(&centersSnapshot{centers: centers, count: count})
	return centers
}

func (b *decayedBackend) CacheStats() (hits, misses int64) {
	return b.hits.Load(), b.misses.Load()
}

func (b *decayedBackend) Count() int64 { return b.sh.Count() }

func (b *decayedBackend) PointsStored() int { return b.sh.PointsStored() }

func (b *decayedBackend) Name() string { return b.sh.Name() }

func (b *decayedBackend) NumShards() int { return b.sh.NumLanes() }

func (b *decayedBackend) Spec() BackendSpec { return b.spec }

// Snapshot quiesces every lane — the sequencer cursors and all per-lane
// summaries captured under one global lock ladder, so acked == stored —
// and writes a v4 typed envelope of per-lane sub-envelopes.
func (b *decayedBackend) Snapshot(w io.Writer) error {
	return b.sh.Quiesce(func(shards []*decay.Shard, clock, rr, count int64) error {
		var elapsed float64
		if b.wall {
			// Read inside the quiesce: every applied batch's timestamp
			// precedes it, so the restored clock can never run behind a
			// stored point.
			elapsed = b.now()
		}
		sss, dim, err := persist.SnapshotDecayedShards(shards)
		if err != nil {
			return err
		}
		if dim == 0 {
			dim = b.spec.Dim
		}
		return persist.Save(w, persist.Envelope{Kind: persist.KindBackend, Backend: &persist.BackendSnapshot{
			Type:             persist.BackendDecayed,
			Algo:             string(b.spec.Algo),
			K:                b.spec.K,
			Dim:              dim,
			Shards:           len(shards),
			HalfLife:         b.spec.HalfLife,
			HalfLifeSeconds:  b.spec.HalfLifeSeconds,
			Count:            count,
			Clock:            clock,
			RR:               rr,
			ElapsedSeconds:   elapsed,
			PointsPerSec:     b.spec.PointsPerSec,
			BytesPerSec:      b.spec.BytesPerSec,
			MaxResidentBytes: b.spec.MaxResidentBytes,
			DecayedShards:    sss,
		}})
	})
}

// windowedBackend serves the sharded sliding-window pipeline: sequencing
// assigns global arrival indices, per-lane exponential histograms absorb
// the batches in parallel, and queries expire every lane against the
// global clock before unioning the lane coresets — behind the same
// cached-centers single-flight fast path as Concurrent. Expiry is keyed
// to arrival order, not wall-clock time, so count-based cache freshness
// is exact here too.
type windowedBackend struct {
	spec  BackendSpec
	sh    *window.Sharded
	alpha float64

	cache        atomic.Pointer[centersSnapshot]
	refreshMu    sync.Mutex // single-flight guard for recomputation
	hits, misses atomic.Int64
}

func (b *windowedBackend) AddBatch(pts [][]float64) {
	if len(pts) == 0 {
		return
	}
	wps := make([]geom.Weighted, len(pts))
	for i, p := range pts {
		wps[i] = geom.Weighted{P: geom.Point(p), W: 1}
	}
	b.sh.AddBatch(wps)
}

func (b *windowedBackend) AddWeighted(p []float64, w float64) {
	b.sh.AddBatch([]geom.Weighted{{P: geom.Point(p), W: w}})
}

func (b *windowedBackend) Centers() [][]float64 {
	return b.CentersContext(context.Background())
}

// CentersContext is Centers carrying the request context for trace
// staging, as for decayedBackend.
func (b *windowedBackend) CentersContext(ctx context.Context) [][]float64 {
	n := b.sh.Count()
	if snap := b.cache.Load(); snap != nil && fresh(n, snap.count, b.alpha) {
		b.hits.Add(1)
		return clonePoints(snap.centers)
	}
	b.misses.Add(1)
	b.refreshMu.Lock()
	defer b.refreshMu.Unlock()
	if snap := b.cache.Load(); snap != nil && fresh(n, snap.count, b.alpha) {
		return clonePoints(snap.centers)
	}
	return clonePoints(b.refreshLocked(ctx))
}

func (b *windowedBackend) Refresh() [][]float64 {
	return b.RefreshContext(context.Background())
}

// RefreshContext recomputes the centers unconditionally, replacing the
// cache; the merge is staged into ctx's trace span.
func (b *windowedBackend) RefreshContext(ctx context.Context) [][]float64 {
	b.refreshMu.Lock()
	defer b.refreshMu.Unlock()
	return clonePoints(b.refreshLocked(ctx))
}

// refreshLocked expires and unions the lane coresets (the shard-merge
// trace stage), runs the query k-means, and installs the new cache
// entry. Caller holds refreshMu.
func (b *windowedBackend) refreshLocked(ctx context.Context) []Point {
	count := b.sh.Count()
	done := trace.FromContext(ctx).StartStage("shard-merge")
	union := b.sh.Coreset()
	done()
	cs := b.sh.CoresetCenters(union)
	centers := make([]Point, len(cs))
	for i, p := range cs {
		centers[i] = []float64(p)
	}
	b.cache.Store(&centersSnapshot{centers: centers, count: count})
	return centers
}

func (b *windowedBackend) CacheStats() (hits, misses int64) {
	return b.hits.Load(), b.misses.Load()
}

func (b *windowedBackend) Count() int64 { return b.sh.Count() }

func (b *windowedBackend) PointsStored() int { return b.sh.PointsStored() }

func (b *windowedBackend) Name() string { return b.sh.Name() }

func (b *windowedBackend) NumShards() int { return b.sh.NumLanes() }

func (b *windowedBackend) Spec() BackendSpec { return b.spec }

// Snapshot quiesces every lane and writes a v4 typed envelope of
// per-lane window snapshots plus the sequencer cursors.
func (b *windowedBackend) Snapshot(w io.Writer) error {
	return b.sh.Quiesce(func(subs []*window.Clusterer, clock, rr, count int64) error {
		wss := make([]window.Snapshot, len(subs))
		dim := 0
		for i, wc := range subs {
			wss[i] = wc.Snapshot()
			if dim == 0 {
				dim = wc.Dim()
			}
		}
		if dim == 0 {
			dim = b.spec.Dim
		}
		return persist.Save(w, persist.Envelope{Kind: persist.KindBackend, Backend: &persist.BackendSnapshot{
			Type:             persist.BackendWindowed,
			K:                b.spec.K,
			Dim:              dim,
			Shards:           len(subs),
			WindowN:          b.spec.WindowN,
			Count:            count,
			Clock:            clock,
			RR:               rr,
			PointsPerSec:     b.spec.PointsPerSec,
			BytesPerSec:      b.spec.BytesPerSec,
			MaxResidentBytes: b.spec.MaxResidentBytes,
			WindowShards:     wss,
		}})
	})
}

// pointsOut converts internal points to caller-owned [][]float64 copies.
func pointsOut(cs []geom.Point) [][]float64 {
	out := make([][]float64, len(cs))
	for i, c := range cs {
		out[i] = append([]float64(nil), c...)
	}
	return out
}
