// Benchmarks regenerating the shape of every table and figure in the
// paper's evaluation (Section 5). Each BenchmarkFigN / BenchmarkTableN
// exercises exactly the code path behind the corresponding experiment in
// internal/experiments (which cmd/streambench runs at full scale); the
// benchmark configurations are scaled down so `go test -bench=.` completes
// in minutes. Custom metrics report the paper's units (µs/point, points of
// memory) alongside ns/op.
//
// Reference full-scale runs live in EXPERIMENTS.md.
package streamkm_test

import (
	"fmt"
	"math/rand"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/datagen"
	"streamkm/internal/experiments"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/workload"
)

// benchDataset caches one dataset per (name, n) across benchmarks.
var benchCache = map[string]datagen.Dataset{}

func benchData(b *testing.B, name string, n int) datagen.Dataset {
	b.Helper()
	key := fmt.Sprintf("%s/%d", name, n)
	ds, ok := benchCache[key]
	if !ok {
		var err error
		ds, err = datagen.ByName(name, n, 1)
		if err != nil {
			b.Fatal(err)
		}
		benchCache[key] = ds
	}
	return ds
}

// streamOnce runs one full stream+query pass and reports paper-style
// per-point metrics.
func streamOnce(b *testing.B, algo string, ds datagen.Dataset, k, m int,
	alpha float64, sched workload.Schedule, opt kmeans.Options) workload.Result {
	b.Helper()
	alg, err := experiments.NewClusterer(algo, k, m, len(ds.Points)/m, alpha, 1, opt)
	if err != nil {
		b.Fatal(err)
	}
	return workload.Run(alg, ds.Points, sched)
}

func reportPerPoint(b *testing.B, res workload.Result) {
	b.ReportMetric(float64(res.UpdatePerPoint().Nanoseconds())/1e3, "update-µs/pt")
	b.ReportMetric(float64(res.QueryPerPoint().Nanoseconds())/1e3, "query-µs/pt")
	b.ReportMetric(float64(res.PointsStored), "mem-points")
}

// BenchmarkTable1QueryScaling validates the Table 1 asymptotics: query cost
// of CT grows with log N (all levels merged) while CC merges at most r
// buckets and RCC O(log log N) — so CT's per-query time should grow faster
// with stream length than CC's and RCC's.
func BenchmarkTable1QueryScaling(b *testing.B) {
	const k, m = 10, 200
	for _, algo := range []string{"StreamKM++", "CC", "RCC"} {
		for _, nBuckets := range []int{32, 256} {
			n := nBuckets * m
			ds := benchData(b, "power", n)
			b.Run(fmt.Sprintf("%s/buckets=%d", algo, nBuckets), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := streamOnce(b, algo, ds, k, m, 1.2,
						workload.FixedInterval{Q: int64(m)}, kmeans.AccuracyOptions())
					if i == b.N-1 {
						reportPerPoint(b, res)
					}
				}
			})
		}
	}
}

// BenchmarkTable1Update validates the Table 1 update column: amortized
// O(dm) per point for CT/CC, O(dm log log N) for RCC.
func BenchmarkTable1Update(b *testing.B) {
	const k, m = 10, 200
	ds := benchData(b, "power", 40000)
	for _, algo := range []string{"Sequential", "StreamKM++", "CC", "RCC", "OnlineCC"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := streamOnce(b, algo, ds, k, m, 1.2, workload.Never{}, kmeans.FastOptions())
				if i == b.N-1 {
					b.ReportMetric(float64(res.UpdatePerPoint().Nanoseconds())/1e3, "update-µs/pt")
				}
			}
		})
	}
}

// BenchmarkFig4Cost regenerates Figure 4's pipeline (accuracy vs k) for one
// dataset at k=10 and k=30: stream with queries, then accuracy-extract
// final centers. The benchmark measures the full pipeline cost; the
// resulting SSQ is reported as a custom metric so runs double as accuracy
// spot-checks.
func BenchmarkFig4Cost(b *testing.B) {
	ds := benchData(b, "power", 10000)
	for _, k := range []int{10, 30} {
		for _, algo := range experiments.AlgoNames {
			b.Run(fmt.Sprintf("%s/k=%d", algo, k), func(b *testing.B) {
				m := 20 * k
				for i := 0; i < b.N; i++ {
					res := streamOnce(b, algo, ds, k, m, 1.2,
						workload.FixedInterval{Q: 100}, kmeans.FastOptions())
					if i == b.N-1 {
						b.ReportMetric(workload.FinalCost(res, ds.Points), "ssq")
					}
				}
			})
		}
	}
}

// BenchmarkFig5TotalTime regenerates Figure 5: total stream+query time as
// the query interval q varies.
func BenchmarkFig5TotalTime(b *testing.B) {
	ds := benchData(b, "power", 10000)
	const k, m = 10, 200
	for _, algo := range []string{"StreamKM++", "CC", "RCC", "OnlineCC"} {
		for _, q := range []int64{50, 400, 3200} {
			b.Run(fmt.Sprintf("%s/q=%d", algo, q), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := streamOnce(b, algo, ds, k, m, 1.2,
						workload.FixedInterval{Q: q}, kmeans.AccuracyOptions())
					if i == b.N-1 {
						reportPerPoint(b, res)
					}
				}
			})
		}
	}
}

// BenchmarkFig6CostVsBucket regenerates Figure 6: cost as bucket size
// varies (benchmarked at factors 20 and 60).
func BenchmarkFig6CostVsBucket(b *testing.B) {
	ds := benchData(b, "power", 10000)
	const k = 10
	for _, algo := range []string{"StreamKM++", "CC", "RCC", "OnlineCC"} {
		for _, factor := range []int{20, 60} {
			b.Run(fmt.Sprintf("%s/m=%dk", algo, factor), func(b *testing.B) {
				m := factor * k
				for i := 0; i < b.N; i++ {
					res := streamOnce(b, algo, ds, k, m, 1.2,
						workload.FixedInterval{Q: 100}, kmeans.FastOptions())
					if i == b.N-1 {
						b.ReportMetric(workload.FinalCost(res, ds.Points), "ssq")
					}
				}
			})
		}
	}
}

// BenchmarkFig7TimeVsBucket regenerates Figure 7: per-point runtime as
// bucket size varies.
func BenchmarkFig7TimeVsBucket(b *testing.B) {
	ds := benchData(b, "power", 10000)
	const k = 10
	for _, algo := range []string{"StreamKM++", "CC", "RCC", "OnlineCC"} {
		for _, factor := range []int{20, 100} {
			b.Run(fmt.Sprintf("%s/m=%dk", algo, factor), func(b *testing.B) {
				m := factor * k
				for i := 0; i < b.N; i++ {
					res := streamOnce(b, algo, ds, k, m, 1.2,
						workload.FixedInterval{Q: 100}, kmeans.AccuracyOptions())
					if i == b.N-1 {
						reportPerPoint(b, res)
					}
				}
			})
		}
	}
}

// BenchmarkFig8to10Poisson regenerates Figures 8-10: per-point update,
// query and total time under Poisson query arrivals at a high and a low
// rate.
func BenchmarkFig8to10Poisson(b *testing.B) {
	ds := benchData(b, "power", 10000)
	const k, m = 10, 200
	for _, algo := range []string{"StreamKM++", "CC", "RCC", "OnlineCC"} {
		for _, lambda := range []float64{0.02, 0.0003125} {
			b.Run(fmt.Sprintf("%s/lambda=%g", algo, lambda), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sched := workload.Poisson{Lambda: lambda, Rng: rand.New(rand.NewSource(int64(i)))}
					res := streamOnce(b, algo, ds, k, m, 1.2, sched, kmeans.AccuracyOptions())
					if i == b.N-1 {
						reportPerPoint(b, res)
					}
				}
			})
		}
	}
}

// BenchmarkFig11Alpha regenerates Figure 11: OnlineCC runtime against the
// switching threshold alpha.
func BenchmarkFig11Alpha(b *testing.B) {
	ds := benchData(b, "power", 10000)
	const k, m = 10, 200
	for _, alpha := range []float64{1.2, 2.4, 9.6} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := streamOnce(b, "OnlineCC", ds, k, m, alpha,
					workload.FixedInterval{Q: 100}, kmeans.AccuracyOptions())
				if i == b.N-1 {
					reportPerPoint(b, res)
				}
			}
		})
	}
}

// BenchmarkTable4Memory regenerates Table 4: end-of-stream memory use in
// points (reported as a custom metric).
func BenchmarkTable4Memory(b *testing.B) {
	ds := benchData(b, "power", 20000)
	const k, m = 10, 200
	for _, algo := range []string{"StreamKM++", "CC", "RCC", "OnlineCC"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := streamOnce(b, algo, ds, k, m, 1.2,
					workload.FixedInterval{Q: 100}, kmeans.FastOptions())
				if i == b.N-1 {
					b.ReportMetric(float64(res.PointsStored), "mem-points")
					b.ReportMetric(float64(res.PointsStored*ds.Dim*8)/1e6, "mem-MB")
				}
			}
		})
	}
}

// --- Primitive benchmarks: the building blocks under every figure. ---

func benchWeighted(n, d int, seed int64) []geom.Weighted {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Weighted, n)
	for i := range out {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = rng.NormFloat64() * 10
		}
		out[i] = geom.Weighted{P: p, W: 1}
	}
	return out
}

// BenchmarkKMeansPPSeed measures the D^2-sampling seeding pass (Theorem 1).
func BenchmarkKMeansPPSeed(b *testing.B) {
	pts := benchWeighted(2000, 16, 1)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kmeans.SeedPP(rng, pts, 20)
	}
}

// BenchmarkCoresetBuild measures one bucket reduce (Theorem 2's O(dnm)).
func BenchmarkCoresetBuild(b *testing.B) {
	for _, builder := range []coreset.Builder{coreset.KMeansPP{}, coreset.Sensitivity{}, coreset.Uniform{}} {
		b.Run(builder.Name(), func(b *testing.B) {
			pts := benchWeighted(1000, 16, 3)
			rng := rand.New(rand.NewSource(4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = builder.Build(rng, pts, 100)
			}
		})
	}
}

// BenchmarkStructureUpdate measures the amortized bucket insert for each
// structure (Table 1's update column at the structure level).
func BenchmarkStructureUpdate(b *testing.B) {
	const m = 200
	mk := map[string]func() core.Structure{
		"CT": func() core.Structure {
			return core.NewCT(2, m, coreset.KMeansPP{}, rand.New(rand.NewSource(5)))
		},
		"CC": func() core.Structure {
			return core.NewCC(2, m, coreset.KMeansPP{}, rand.New(rand.NewSource(6)))
		},
		"RCC": func() core.Structure {
			return core.NewRCC(2, m, coreset.KMeansPP{}, rand.New(rand.NewSource(7)))
		},
	}
	bucket := benchWeighted(m, 16, 8)
	for name, f := range mk {
		b.Run(name, func(b *testing.B) {
			s := f()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(geom.CloneWeighted(bucket))
			}
		})
	}
}
