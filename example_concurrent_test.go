package streamkm_test

import (
	"fmt"
	"math/rand"
	"sync"

	"streamkm"
)

// Example_concurrent serves a clustering workload the way cmd/streamkmd
// does: one producer goroutine pinned to each ingest shard (so producers
// never contend on a lock) while another goroutine queries Centers
// concurrently — most queries are answered from the cached-centers fast
// path without touching the shards.
func Example_concurrent() {
	const shards = 4
	c := streamkm.MustNewConcurrent(streamkm.AlgoCC, shards, streamkm.Config{K: 3})

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			means := []streamkm.Point{{0, 0}, {40, 0}, {0, 40}}
			for i := 0; i < 2000; i++ {
				m := means[rng.Intn(len(means))]
				c.AddTo(s, streamkm.Point{m[0] + rng.NormFloat64(), m[1] + rng.NormFloat64()})
			}
		}(s)
	}

	done := make(chan struct{})
	go func() { // a concurrent reader querying mid-stream
		defer close(done)
		for i := 0; i < 100; i++ {
			c.Centers()
		}
	}()
	wg.Wait()
	<-done

	centers := c.Refresh() // force an up-to-the-last-point answer
	fmt.Println(len(centers), "centers from", c.Count(), "points")
	// Output: 3 centers from 8000 points
}
