package streamkm

import (
	"fmt"
	"io"
	"math/rand"

	"streamkm/internal/core"
	"streamkm/internal/decay"
	"streamkm/internal/geom"
	"streamkm/internal/kmedian"
	"streamkm/internal/parallel"
	"streamkm/internal/persist"
	"streamkm/internal/quality"
)

// This file wires the library's extensions — the future-work directions
// from the paper's conclusion plus operational features — into the public
// API:
//
//   - snapshot/restore of live clusterer state (Save/Load);
//   - streaming k-median via coreset caching (NewKMedian);
//   - time-decayed weighting for concept drift (NewDecayed);
//   - parallel/distributed streams (NewSharded).

// Save serializes the clusterer's complete logical state to w in a
// versioned, checksummed binary format. Only single-stream clusterers
// created by New can be saved here; sharded clusterers write a sharded
// envelope (one nested clusterer per shard plus routing metadata) via
// Concurrent.Snapshot or ShardedClusterer.Snapshot instead. Randomness is
// not captured: a restored clusterer continues with the seed passed to
// Load.
func Save(w io.Writer, c Clusterer) error {
	wr, ok := c.(*wrapper)
	if !ok {
		return fmt.Errorf("streamkm: cannot snapshot %T (only built-in clusterers)", c)
	}
	env, err := persist.SnapshotClusterer(wr.inner)
	if err != nil {
		return err
	}
	return persist.Save(w, env)
}

// Load reconstructs a clusterer previously written by Save. cfg supplies
// the non-serialized pieces (Seed, Builder, query options); its structural
// fields (K, BucketSize, ...) are ignored in favor of the snapshot's.
// Snapshots written by Concurrent.Snapshot or ShardedClusterer.Snapshot
// carry a sharded envelope and are rejected here — restore those with
// NewConcurrentFromSnapshot or NewShardedFromSnapshot.
func Load(r io.Reader, cfg Config) (Clusterer, error) {
	// Validate only the fields Load actually uses; a zero Config is fine.
	cfg.K = 1
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	b, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	env, err := persist.Load(r)
	if err != nil {
		return nil, err
	}
	inner, err := persist.RestoreClusterer(env, cfg.Seed, b, cfg.queryOptions())
	if err != nil {
		return nil, err
	}
	return &wrapper{inner: inner}, nil
}

// NewKMedian creates a streaming k-median clusterer: the same cached
// coreset machinery with reductions and queries under the distance (not
// squared distance) objective — the extension proposed in the paper's
// conclusion. algo selects the summary structure (AlgoCT, AlgoCC or
// AlgoRCC; others are rejected).
func NewKMedian(algo Algo, cfg Config) (Clusterer, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := kmedian.Builder{}
	var s core.Structure
	switch algo {
	case AlgoCT:
		s = core.NewCT(cfg.MergeDegree, cfg.BucketSize, b, rng)
	case AlgoCC:
		s = core.NewCC(cfg.MergeDegree, cfg.BucketSize, b, rng)
	case AlgoRCC:
		s = core.NewRCC(cfg.RCCOrder, cfg.BucketSize, b, rng)
	default:
		return nil, fmt.Errorf("streamkm: k-median supports CT, CC and RCC, not %q", algo)
	}
	opt := kmedian.Options{Runs: cfg.QueryRuns, RefineIters: cfg.QueryLloydIters}
	return &wrapper{inner: kmedian.NewDriver(s, cfg.K, cfg.BucketSize, rng, opt)}, nil
}

// KMedianCost returns the k-median cost (sum of weighted distances) of
// points against centers.
func KMedianCost(points []Point, centers []Point) float64 {
	wp := make([]geom.Weighted, len(points))
	for i, p := range points {
		wp[i] = geom.Weighted{P: geom.Point(p), W: 1}
	}
	cs := make([]geom.Point, len(centers))
	for i, c := range centers {
		cs[i] = geom.Point(c)
	}
	return kmedian.Cost(wp, cs)
}

// NewDecayed creates a clusterer whose points fade with exponential time
// decay: a point's influence halves every halfLife arrivals (forward
// decay, addressing the paper's concept-drift open question). algo selects
// the summary structure (AlgoCT, AlgoCC or AlgoRCC).
func NewDecayed(algo Algo, cfg Config, halfLife float64) (Clusterer, error) {
	if halfLife <= 0 {
		return nil, fmt.Errorf("streamkm: halfLife must be > 0, got %v", halfLife)
	}
	switch algo {
	case AlgoCT, AlgoCC, AlgoRCC:
	default:
		return nil, fmt.Errorf("streamkm: decay supports CT, CC and RCC, not %q", algo)
	}
	c, err := New(algo, cfg)
	if err != nil {
		return nil, err
	}
	drv := c.(*wrapper).inner.(*core.Driver)
	lambda := ln2 / halfLife
	return &wrapper{inner: decay.New(drv, lambda)}, nil
}

// ln2 avoids importing math for one constant.
const ln2 = 0.6931471805599453

// QualityReport summarizes clustering quality beyond cost: silhouette
// coefficient (higher is better, in [-1, 1]), Davies–Bouldin index (lower
// is better), per-cluster masses, and empty-cluster count.
type QualityReport struct {
	K             int
	N             int
	SSQ           float64
	Silhouette    float64
	DaviesBouldin float64
	ClusterSizes  []float64
	EmptyClusters int
}

// Evaluate scores centers against points with standard clustering quality
// diagnostics. Silhouette is computed on a uniform sample for large inputs;
// seed makes the sampling reproducible.
func Evaluate(points []Point, centers []Point, seed int64) QualityReport {
	wp := make([]geom.Weighted, len(points))
	for i, p := range points {
		wp[i] = geom.Weighted{P: geom.Point(p), W: 1}
	}
	cs := make([]geom.Point, len(centers))
	for i, c := range centers {
		cs[i] = geom.Point(c)
	}
	r := quality.Evaluate(rand.New(rand.NewSource(seed)), wp, cs)
	return QualityReport{
		K:             r.K,
		N:             r.N,
		SSQ:           r.SSQ,
		Silhouette:    r.Silhouette,
		DaviesBouldin: r.DaviesBouldin,
		ClusterSizes:  r.ClusterSizes,
		EmptyClusters: r.EmptyClusters,
	}
}

// NewSharded creates a clusterer over p parallel substreams, each with its
// own independent summary structure (algo: AlgoCT, AlgoCC or AlgoRCC);
// global queries merge the shard coresets (valid by the coreset union
// property). AddTo on the returned *ShardedClusterer feeds a specific
// shard and is safe for one goroutine per shard; Add routes round-robin.
func NewSharded(p int, algo Algo, cfg Config) (*ShardedClusterer, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	switch algo {
	case AlgoCT, AlgoCC, AlgoRCC:
	default:
		return nil, fmt.Errorf("streamkm: sharding supports CT, CC and RCC, not %q", algo)
	}
	sh, err := newShardedInner(p, algo, cfg)
	if err != nil {
		return nil, err
	}
	return &ShardedClusterer{inner: sh}, nil
}

// newShardedInner builds the parallel.Sharded backing both NewSharded and
// NewConcurrent: p independent driver-based structures with per-shard
// seeds. cfg must already carry defaults and algo must be CT, CC or RCC.
func newShardedInner(p int, algo Algo, cfg Config) (*parallel.Sharded, error) {
	b, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	return parallel.NewSharded(p, cfg.K, cfg.Seed, cfg.queryOptions(),
		func(_ int, seed int64) *core.Driver {
			rng := rand.New(rand.NewSource(seed))
			var s core.Structure
			switch algo {
			case AlgoCT:
				s = core.NewCT(cfg.MergeDegree, cfg.BucketSize, b, rng)
			case AlgoCC:
				s = core.NewCC(cfg.MergeDegree, cfg.BucketSize, b, rng)
			default:
				s = core.NewRCC(cfg.RCCOrder, cfg.BucketSize, b, rng)
			}
			return core.NewDriver(s, cfg.K, cfg.BucketSize, rng, cfg.queryOptions())
		})
}

// ShardedClusterer clusters p parallel substreams. It satisfies Clusterer
// (round-robin Add) and additionally exposes AddTo for explicit routing.
// Unlike the single-stream clusterers, it is safe for concurrent use: one
// goroutine per shard via AddTo, queries from any goroutine.
type ShardedClusterer struct {
	inner *parallel.Sharded
}

// Add routes one point round-robin across shards.
func (s *ShardedClusterer) Add(p Point) { s.inner.Add(geom.Point(p)) }

// AddWeighted routes one weighted point round-robin across shards.
func (s *ShardedClusterer) AddWeighted(p Point, w float64) {
	s.inner.AddWeighted(geom.Weighted{P: geom.Point(p), W: w})
}

// AddTo feeds one point to the given shard (0 <= shard < NumShards).
func (s *ShardedClusterer) AddTo(shard int, p Point) { s.inner.AddTo(shard, geom.Point(p)) }

// AddWeightedTo feeds one weighted point to the given shard.
func (s *ShardedClusterer) AddWeightedTo(shard int, p Point, w float64) {
	s.inner.AddWeightedTo(shard, geom.Weighted{P: geom.Point(p), W: w})
}

// NumShards returns the shard count.
func (s *ShardedClusterer) NumShards() int { return s.inner.NumShards() }

// Centers answers a global query over all shards.
func (s *ShardedClusterer) Centers() []Point {
	cs := s.inner.Centers()
	out := make([]Point, len(cs))
	for i, c := range cs {
		out[i] = []float64(c)
	}
	return out
}

// PointsStored sums shard memory in points.
func (s *ShardedClusterer) PointsStored() int { return s.inner.PointsStored() }

// Name identifies the algorithm in reports.
func (s *ShardedClusterer) Name() string { return s.inner.Name() }

// Count returns the number of points observed across all shards.
func (s *ShardedClusterer) Count() int64 { return s.inner.Count() }

// Snapshot serializes the sharded clusterer's complete logical state to w
// as one sharded envelope (all per-shard summaries plus the round-robin
// cursor). The shards are quiesced for the duration, so the snapshot is a
// consistent cut; safe to call while other goroutines ingest.
func (s *ShardedClusterer) Snapshot(w io.Writer) error {
	env, err := persist.SnapshotSharded(s.inner)
	if err != nil {
		return err
	}
	return persist.Save(w, env)
}

// NewShardedFromSnapshot reconstructs a ShardedClusterer previously
// written by Snapshot (or by Concurrent.Snapshot — the cached-centers
// metadata is simply unused). cfg supplies the non-serialized pieces as
// for Load.
func NewShardedFromSnapshot(r io.Reader, cfg Config) (*ShardedClusterer, error) {
	cfg.K = 1
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	b, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	env, err := persist.Load(r)
	if err != nil {
		return nil, err
	}
	inner, err := persist.RestoreSharded(env, cfg.Seed, b, cfg.queryOptions())
	if err != nil {
		return nil, err
	}
	return &ShardedClusterer{inner: inner}, nil
}
