package streamkm_test

import (
	"bytes"
	"fmt"
	"math/rand"

	"streamkm"
)

// A fixed miniature stream used by the examples: three tight blobs.
func exampleStream(n int) []streamkm.Point {
	rng := rand.New(rand.NewSource(7))
	blobs := [][2]float64{{0, 0}, {100, 0}, {0, 100}}
	pts := make([]streamkm.Point, n)
	for i := range pts {
		b := blobs[i%3]
		pts[i] = streamkm.Point{b[0] + rng.NormFloat64(), b[1] + rng.NormFloat64()}
	}
	return pts
}

func ExampleNew() {
	c, err := streamkm.New(streamkm.AlgoCC, streamkm.Config{K: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	for _, p := range exampleStream(3000) {
		c.Add(p)
	}
	centers := c.Centers()
	fmt.Println("centers:", len(centers))
	fmt.Println("dims:", len(centers[0]))
	// Output:
	// centers: 3
	// dims: 2
}

func ExampleCost() {
	points := []streamkm.Point{{0, 0}, {2, 0}}
	centers := []streamkm.Point{{1, 0}}
	fmt.Println(streamkm.Cost(points, centers))
	// Output: 2
}

func ExampleKMedianCost() {
	points := []streamkm.Point{{3, 4}}
	centers := []streamkm.Point{{0, 0}}
	fmt.Println(streamkm.KMedianCost(points, centers))
	// Output: 5
}

func ExampleSave() {
	c := streamkm.MustNew(streamkm.AlgoCC, streamkm.Config{K: 3, Seed: 1})
	for _, p := range exampleStream(1500) {
		c.Add(p)
	}

	var snapshot bytes.Buffer
	if err := streamkm.Save(&snapshot, c); err != nil {
		panic(err)
	}
	restored, err := streamkm.Load(&snapshot, streamkm.Config{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", restored.Name())
	fmt.Println("same memory:", restored.PointsStored() == c.PointsStored())
	// Output:
	// algorithm: CC
	// same memory: true
}

func ExampleNewDecayed() {
	// Half-life of 500 points: recent data dominates the clustering.
	c, err := streamkm.NewDecayed(streamkm.AlgoCC, streamkm.Config{K: 2, Seed: 1}, 500)
	if err != nil {
		panic(err)
	}
	for _, p := range exampleStream(2000) {
		c.Add(p)
	}
	fmt.Println("algorithm:", c.Name())
	fmt.Println("centers:", len(c.Centers()))
	// Output:
	// algorithm: Decay(CC)
	// centers: 2
}

func ExampleNewSharded() {
	s, err := streamkm.NewSharded(4, streamkm.AlgoCC, streamkm.Config{K: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	for i, p := range exampleStream(4000) {
		s.AddTo(i%4, p) // one producer per shard in real deployments
	}
	fmt.Println("algorithm:", s.Name())
	fmt.Println("centers:", len(s.Centers()))
	// Output:
	// algorithm: Sharded[4xCC]
	// centers: 3
}
