package streamkm

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"streamkm/internal/geom"
	"streamkm/internal/parallel"
	"streamkm/internal/persist"
)

// Concurrent is a thread-safe streaming clusterer built for serving
// traffic: many producer goroutines ingest concurrently while any number
// of goroutines query Centers, with neither side serializing the other.
//
// Ingest is sharded P ways (the paper's Section 6 open question on
// parallel streams, resolved by the coreset union property: the union of
// per-shard coresets is a coreset of the union of the substreams). Each
// shard is independently locked, so producers pinned to distinct shards
// never contend; AddBatch amortizes one lock acquisition over a whole
// batch.
//
// Queries take the cached-centers fast path: the centers computed by the
// previous query are reused until the stream has grown by more than a
// factor Alpha since they were computed — the same cost-staleness idea
// OnlineCC (Algorithm 7) uses to answer most queries in O(1). A stale
// cache triggers exactly one recomputation (single-flight); concurrent
// queries keep being served the previous centers meanwhile, so query
// latency stays flat under heavy read traffic.
type Concurrent struct {
	inner *parallel.Sharded
	k     int
	alpha float64
	algo  Algo
	dim   int // dimension recorded in the snapshot this was restored from; 0 otherwise

	cache atomic.Pointer[centersSnapshot]

	refreshMu sync.Mutex // single-flight guard for recomputation

	hits, misses atomic.Int64
}

// centersSnapshot is one immutable cache entry: the centers computed by a
// query and the stream count at the moment the computation started.
type centersSnapshot struct {
	centers []Point
	count   int64
}

// NewConcurrent creates a thread-safe clusterer with p ingest shards.
// algo selects the per-shard summary structure (AlgoCT, AlgoCC or
// AlgoRCC; the other algorithms have no coreset to union and are
// rejected). cfg is interpreted as for New, with one addition: Alpha (>1,
// default 1.2) is the cached-centers staleness threshold — queries
// recompute only once the stream has grown past Alpha times the count at
// the previous computation.
func NewConcurrent(algo Algo, p int, cfg Config) (*Concurrent, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	switch algo {
	case AlgoCT, AlgoCC, AlgoRCC:
	default:
		return nil, fmt.Errorf("streamkm: Concurrent supports CT, CC and RCC, not %q", algo)
	}
	inner, err := newShardedInner(p, algo, cfg)
	if err != nil {
		return nil, err
	}
	return &Concurrent{inner: inner, k: cfg.K, alpha: cfg.Alpha, algo: algo}, nil
}

// MustNewConcurrent is NewConcurrent that panics on configuration errors.
func MustNewConcurrent(algo Algo, p int, cfg Config) *Concurrent {
	c, err := NewConcurrent(algo, p, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Add observes one point, routing it round-robin across shards. Safe for
// concurrent use; producers that can pin a shard should prefer AddTo.
func (c *Concurrent) Add(p Point) {
	c.inner.Add(geom.Point(p))
}

// AddWeighted observes one weighted point, routed round-robin.
func (c *Concurrent) AddWeighted(p Point, w float64) {
	c.inner.AddWeighted(geom.Weighted{P: geom.Point(p), W: w})
}

// AddTo feeds one point to a specific shard (0 <= shard < NumShards).
// One producer goroutine per shard is the contention-free discipline.
func (c *Concurrent) AddTo(shard int, p Point) {
	c.inner.AddTo(shard, geom.Point(p))
}

// AddBatch observes a batch of points under a single shard lock
// acquisition — the preferred ingest path for networked producers.
// Successive batches rotate round-robin across shards.
func (c *Concurrent) AddBatch(pts []Point) {
	if len(pts) == 0 {
		return
	}
	wps := make([]geom.Weighted, len(pts))
	for i, p := range pts {
		wps[i] = geom.Weighted{P: geom.Point(p), W: 1}
	}
	c.inner.AddBatchTo(c.inner.NextShard(), wps)
}

// Centers returns k cluster centers for everything observed so far. Safe
// for concurrent use with all ingest methods. If centers computed by an
// earlier query are still fresh (stream grown by at most a factor Alpha
// since), they are returned without touching the shards; otherwise one
// caller recomputes while any concurrent queries continue to be served
// the previous centers. The returned slices are copies owned by the
// caller.
func (c *Concurrent) Centers() []Point {
	n := c.inner.Count()
	if snap := c.cache.Load(); snap != nil && fresh(n, snap.count, c.alpha) {
		c.hits.Add(1)
		return clonePoints(snap.centers)
	}
	c.misses.Add(1)
	return c.recompute()
}

// Refresh recomputes the centers unconditionally, replaces the cache, and
// returns them. Use it when an up-to-the-last-point answer matters more
// than latency.
func (c *Concurrent) Refresh() []Point {
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	return clonePoints(c.refreshLocked())
}

// recompute is the single-flight slow path: the first goroutine to find
// the cache stale recomputes; goroutines that queue behind it re-check on
// wake and reuse its result instead of recomputing again.
func (c *Concurrent) recompute() []Point {
	n := c.inner.Count()
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	if snap := c.cache.Load(); snap != nil && fresh(n, snap.count, c.alpha) {
		return clonePoints(snap.centers)
	}
	return clonePoints(c.refreshLocked())
}

// refreshLocked unions the shard coresets, runs k-means++, and installs
// the new cache entry. Caller holds refreshMu. The count is read before
// the union so points racing in during the computation conservatively
// age the new entry rather than extending its life.
func (c *Concurrent) refreshLocked() []Point {
	count := c.inner.Count()
	cs := c.inner.Centers()
	centers := make([]Point, len(cs))
	for i, p := range cs {
		centers[i] = []float64(p)
	}
	c.cache.Store(&centersSnapshot{centers: centers, count: count})
	return centers
}

// fresh reports whether a cache entry computed at count `cached` still
// answers a query arriving at count `now` under staleness threshold
// alpha. An entry computed on an empty stream is only fresh while the
// stream is still empty.
func fresh(now, cached int64, alpha float64) bool {
	if cached == 0 {
		return now == 0
	}
	return float64(now) <= alpha*float64(cached)
}

// clonePoints deep-copies centers so callers can never corrupt the shared
// cache entry.
func clonePoints(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = append([]float64(nil), p...)
	}
	return out
}

// Count returns the number of points observed so far (one atomic load).
func (c *Concurrent) Count() int64 { return c.inner.Count() }

// NumShards returns the ingest shard count.
func (c *Concurrent) NumShards() int { return c.inner.NumShards() }

// K returns the number of centers answered by queries.
func (c *Concurrent) K() int { return c.k }

// PointsStored sums shard memory in points (Table 4 metric).
func (c *Concurrent) PointsStored() int { return c.inner.PointsStored() }

// Name identifies the algorithm, e.g. "Sharded[8xCC]".
func (c *Concurrent) Name() string { return c.inner.Name() }

// CacheStats reports how many Centers calls were answered from the
// cached-centers fast path (hits) versus recomputed (misses).
func (c *Concurrent) CacheStats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Algo returns the per-shard summary structure (AlgoCT, AlgoCC or
// AlgoRCC) this clusterer was built — or restored — with.
func (c *Concurrent) Algo() Algo { return c.algo }

// Dim returns the point dimension recorded in the snapshot this clusterer
// was restored from, or 0 for a fresh instance (the clusterer itself is
// dimension-agnostic; the serving layer tracks dimension). A daemon
// restoring a checkpoint uses it to validate its -dim flag.
func (c *Concurrent) Dim() int { return c.dim }

// Snapshot serializes the clusterer's complete logical state to w as one
// versioned, checksummed sharded envelope: all per-shard summaries, the
// round-robin routing cursor, and the cached-centers entry (so a restored
// instance answers its first queries from the same cache). The shards are
// quiesced for the duration — concurrent ingest blocks briefly, queries
// on the cached fast path keep being served — making the snapshot an
// exactly consistent cut of the stream. Safe for concurrent use.
func (c *Concurrent) Snapshot(w io.Writer) error {
	env, err := c.snapshotEnvelope()
	if err != nil {
		return err
	}
	return persist.Save(w, env)
}

// snapshotEnvelope builds the quiesced KindSharded envelope Snapshot
// writes. The quota-carrying backend wrapper reuses it as the payload
// of a v3 typed envelope.
func (c *Concurrent) snapshotEnvelope() (persist.Envelope, error) {
	// refreshMu orders the snapshot against cache refreshes: both take
	// refreshMu before any shard lock, so the cache entry written below
	// can never be newer than the quiesced shard state.
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	env, err := persist.SnapshotSharded(c.inner)
	if err != nil {
		return persist.Envelope{}, err
	}
	s := env.Sharded
	s.Alpha = c.alpha
	if snap := c.cache.Load(); snap != nil {
		s.HasCache = true
		s.CachedCount = snap.count
		s.CachedCenters = make([][]float64, len(snap.centers))
		for i, p := range snap.centers {
			s.CachedCenters[i] = append([]float64(nil), p...)
		}
	}
	return env, nil
}

// NewConcurrentFromSnapshot reconstructs a Concurrent previously written
// by Snapshot, resuming with every ingested point's weight intact. cfg
// supplies only the non-serialized pieces (Seed, Builder, QueryRuns,
// QueryLloydIters, and optionally Alpha to override the snapshot's
// staleness threshold); structural fields (K, BucketSize, ...) come from
// the snapshot. Randomness is not captured: queries after a restore are
// statistically equivalent but not bit-identical to an uninterrupted run.
func NewConcurrentFromSnapshot(r io.Reader, cfg Config) (*Concurrent, error) {
	env, err := persist.Load(r)
	if err != nil {
		return nil, err
	}
	if env.Kind != persist.KindSharded {
		return nil, fmt.Errorf("streamkm: snapshot holds a single %q clusterer, not a sharded one (use Load)", env.Kind)
	}
	return concurrentFromSharded(env, cfg)
}

// concurrentFromSharded rebuilds a Concurrent from an already-loaded
// KindSharded envelope — shared by NewConcurrentFromSnapshot and the
// spec-driven Restore factory (which also accepts the envelope wrapped in
// a v3 backend envelope).
func concurrentFromSharded(env persist.Envelope, cfg Config) (*Concurrent, error) {
	userAlpha := cfg.Alpha
	// Validate only the fields actually used; a zero Config is fine.
	cfg.K = 1
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	b, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	inner, err := persist.RestoreSharded(env, cfg.Seed, b, cfg.queryOptions())
	if err != nil {
		return nil, err
	}
	s := env.Sharded
	alpha := s.Alpha
	if userAlpha != 0 {
		alpha = userAlpha
	}
	if alpha <= 1 {
		alpha = 1.2 // snapshot predates alpha capture; fall back to the default
	}
	c := &Concurrent{
		inner: inner,
		k:     s.K,
		alpha: alpha,
		algo:  Algo(s.Shards[0].Kind),
		dim:   s.Dim,
	}
	if s.HasCache {
		centers := make([]Point, len(s.CachedCenters))
		for i, p := range s.CachedCenters {
			centers[i] = append([]float64(nil), p...)
		}
		c.cache.Store(&centersSnapshot{centers: centers, count: s.CachedCount})
	}
	return c, nil
}
