package streamkm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// backendStream returns a deterministic 3-cluster mixture.
func backendStream(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {100, 0}, {0, 100}}
	out := make([][]float64, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
	}
	return out
}

func specs() map[string]BackendSpec {
	return map[string]BackendSpec{
		"concurrent": {Type: BackendConcurrent, Algo: AlgoCC, K: 3, Shards: 2},
		"decayed":    {Type: BackendDecayed, Algo: AlgoCC, K: 3, HalfLife: 800},
		"windowed":   {Type: BackendWindowed, K: 3, WindowN: 5000},
	}
}

// TestOpenSnapshotRestoreAllBackends is the factory's core contract:
// every variant opens, ingests, snapshots, and restores with count,
// memory and clustering cost intact.
func TestOpenSnapshotRestoreAllBackends(t *testing.T) {
	pts := backendStream(2000, 42)
	for name, spec := range specs() {
		t.Run(name, func(t *testing.T) {
			cfg := Config{BucketSize: 60, Seed: 5}
			b, err := Open(spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b.AddBatch(pts[:1500])
			b.AddWeighted(pts[1500], 2.5)
			b.AddBatch(pts[1501:])
			if b.Count() != 2000 {
				t.Fatalf("count %d, want 2000", b.Count())
			}
			preCost := Cost(pts, b.Centers())

			var buf bytes.Buffer
			if err := b.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := Restore(spec, bytes.NewReader(buf.Bytes()), Config{Seed: 6})
			if err != nil {
				t.Fatal(err)
			}
			if r.Count() != 2000 {
				t.Fatalf("restored count %d, want 2000", r.Count())
			}
			if r.PointsStored() != b.PointsStored() {
				t.Fatalf("restored memory %d, want %d", r.PointsStored(), b.PointsStored())
			}
			got := r.Spec()
			if got.Type != spec.Type || got.K != spec.K {
				t.Fatalf("restored spec %+v, want type %s k=%d", got, spec.Type, spec.K)
			}
			postCost := Cost(pts, r.Centers())
			if postCost > 2*preCost || preCost > 2*postCost {
				t.Fatalf("cost after restore %v vs %v", postCost, preCost)
			}
			// A restored backend keeps consuming the stream.
			r.AddBatch(pts[:10])
			if r.Count() != 2010 {
				t.Fatalf("count after resume %d, want 2010", r.Count())
			}
		})
	}
}

// TestQuotaFieldsRoundTrip: per-tenant quota fields ride the snapshot
// envelope for every backend variant — a hibernated tenant must wake up
// with the same limits it was created with — and PeekBackend reads them
// without building a backend (the registry boot scan's path).
func TestQuotaFieldsRoundTrip(t *testing.T) {
	pts := backendStream(300, 11)
	for name, spec := range specs() {
		t.Run(name, func(t *testing.T) {
			spec.PointsPerSec = 123.5
			spec.BytesPerSec = 1 << 20
			spec.MaxResidentBytes = 1 << 24
			cfg := Config{BucketSize: 60, Seed: 5}
			b, err := Open(spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b.AddBatch(pts)
			var buf bytes.Buffer
			if err := b.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := Restore(BackendSpec{}, bytes.NewReader(buf.Bytes()), cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := r.Spec()
			if got.PointsPerSec != spec.PointsPerSec || got.BytesPerSec != spec.BytesPerSec ||
				got.MaxResidentBytes != spec.MaxResidentBytes {
				t.Fatalf("restored spec quotas %+v, want %+v", got, spec)
			}
			if r.Count() != 300 {
				t.Fatalf("restored count %d, want 300", r.Count())
			}
			sc := got.StreamConfig()
			if sc.PointsPerSec != spec.PointsPerSec || sc.BytesPerSec != spec.BytesPerSec ||
				sc.MaxResidentBytes != spec.MaxResidentBytes {
				t.Fatalf("StreamConfig quotas %+v, want %+v", sc, spec)
			}
		})
	}
	// Quota-free specs keep writing the legacy envelope shape: a bare
	// Concurrent and a quota-less factory Open must stay byte-compatible
	// (the golden-fixture suites pin that; here we just pin the spec
	// observing zero quotas after a round trip).
	b, err := Open(BackendSpec{Type: BackendConcurrent, Algo: AlgoCC, K: 3, Shards: 2}, Config{BucketSize: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b.AddBatch(pts)
	var buf bytes.Buffer
	if err := b.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(BackendSpec{}, bytes.NewReader(buf.Bytes()), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Spec(); got.PointsPerSec != 0 || got.BytesPerSec != 0 || got.MaxResidentBytes != 0 {
		t.Fatalf("quota-free round trip fabricated quotas: %+v", got)
	}
}

// TestRestoreSpecMismatch: a nonzero requested spec must match the
// snapshot — a tenant that declared "decayed" can never silently resume
// a concurrent (or differently tuned) file.
func TestRestoreSpecMismatch(t *testing.T) {
	cfg := Config{BucketSize: 60, Seed: 1}
	b, err := Open(BackendSpec{Type: BackendDecayed, Algo: AlgoCC, K: 3, HalfLife: 800}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.AddBatch(backendStream(500, 1))
	var buf bytes.Buffer
	if err := b.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	bad := []BackendSpec{
		{Type: BackendWindowed, WindowN: 100},
		{Type: BackendConcurrent},
		{Type: BackendDecayed, HalfLife: 999},
		{Type: BackendDecayed, HalfLife: 800, K: 7},
		{Type: BackendDecayed, HalfLife: 800, Algo: AlgoRCC},
	}
	for i, spec := range bad {
		if _, err := Restore(spec, bytes.NewReader(buf.Bytes()), cfg); err == nil {
			t.Errorf("mismatched spec %d (%+v) restored without error", i, spec)
		}
	}
	// The zero spec adopts whatever the file holds.
	if _, err := Restore(BackendSpec{}, bytes.NewReader(buf.Bytes()), cfg); err != nil {
		t.Errorf("zero spec rejected a valid snapshot: %v", err)
	}
}

// TestRestoreLegacyConcurrentSnapshot: files written by
// Concurrent.Snapshot (bare v2 sharded envelopes) restore through the
// spec factory unchanged — the acceptance criterion that no existing
// checkpoint is orphaned.
func TestRestoreLegacyConcurrentSnapshot(t *testing.T) {
	c := MustNewConcurrent(AlgoCC, 2, Config{K: 3, BucketSize: 60, Seed: 3})
	pts := backendStream(1200, 9)
	c.AddBatch(pts)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Restore(BackendSpec{Type: BackendConcurrent, Algo: AlgoCC, K: 3}, bytes.NewReader(buf.Bytes()), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b.Count() != 1200 {
		t.Fatalf("count %d, want 1200", b.Count())
	}
	if got := b.Spec(); got.Type != BackendConcurrent || got.Shards != 2 {
		t.Fatalf("spec %+v, want concurrent x2 shards", got)
	}
}

func TestOpenValidation(t *testing.T) {
	bad := []BackendSpec{
		{Type: "bogus", K: 3},
		{Type: BackendDecayed, K: 3},                                   // missing half_life
		{Type: BackendWindowed, K: 3},                                  // missing window_n
		{Type: BackendWindowed, K: 3, WindowN: 2},                      // window < bucket
		{Type: BackendConcurrent, K: 0},                                // k < 1
		{Type: BackendDecayed, K: 3, HalfLife: -1},                     // negative knob
		{Type: BackendConcurrent, K: 3, Algo: "XX"},                    // unknown structure
		{Type: BackendConcurrent, K: 3, Dim: -4},                       // negative dim
		{Type: BackendDecayed, Algo: "Sequential", K: 3, HalfLife: 10}, // no coreset to decay
		{Type: BackendConcurrent, K: 3, HalfLife: 10},                  // stray knob
		{Type: BackendDecayed, K: 3, HalfLife: 10, WindowN: 50},        // stray knob
		{Type: BackendWindowed, K: 3, WindowN: 500, HalfLife: 1},       // stray knob
	}
	for i, spec := range bad {
		if _, err := Open(spec, Config{}); err == nil {
			t.Errorf("Open accepted invalid spec %d: %+v", i, spec)
		}
	}
	// The zero type defaults to concurrent.
	b, err := Open(BackendSpec{K: 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Spec().Type != BackendConcurrent {
		t.Errorf("default type %q, want concurrent", b.Spec().Type)
	}
}

// TestDecayedBackendForgetsUnderConcurrency drives the mutex-wrapped
// decayed backend from several goroutines (run with -race) and checks
// the semantic point of decay: after a concept shift, fresh clusters
// dominate queries.
func TestDecayedBackendForgetsUnderConcurrency(t *testing.T) {
	b, err := Open(BackendSpec{Type: BackendDecayed, Algo: AlgoCC, K: 2, HalfLife: 400}, Config{BucketSize: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	old := backendStream(2000, 7) // clusters near the origin
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for off := w * 500; off < (w+1)*500; off += 100 {
				b.AddBatch(old[off : off+100])
				b.Centers()
				b.Count()
			}
		}(w)
	}
	wg.Wait()

	rng := rand.New(rand.NewSource(8))
	fresh := make([][]float64, 6000)
	for i := range fresh {
		base := 5000 * float64(1+i%2)
		fresh[i] = []float64{base + rng.NormFloat64(), base + rng.NormFloat64()}
	}
	b.AddBatch(fresh)
	for _, ctr := range b.Centers() {
		if ctr[0] < 2500 {
			t.Fatalf("center %v still dominated by decayed-away history", ctr)
		}
	}
}

// TestWindowedBackendConcurrency exercises the windowed backend's mutex
// under parallel ingest + queries (run with -race).
func TestWindowedBackendConcurrency(t *testing.T) {
	b, err := Open(BackendSpec{Type: BackendWindowed, K: 3, WindowN: 1000}, Config{BucketSize: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := backendStream(4000, 11)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for off := w * 1000; off < (w+1)*1000; off += 200 {
				b.AddBatch(pts[off : off+200])
				b.Centers()
				var buf bytes.Buffer
				if err := b.Snapshot(&buf); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if b.Count() != 4000 {
		t.Fatalf("count %d, want 4000", b.Count())
	}
	if b.PointsStored() > 2000 {
		t.Fatalf("windowed backend stores %d points for a 1000 window", b.PointsStored())
	}
}
