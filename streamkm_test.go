package streamkm

import (
	"math/rand"
	"testing"
)

func mixturePoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	centers := []Point{{0, 0}, {50, 0}, {0, 50}}
	out := make([]Point, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = Point{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
	}
	return out
}

func TestNewAllAlgorithms(t *testing.T) {
	pts := mixturePoints(2000, 1)
	for _, algo := range Algos() {
		c, err := New(algo, Config{K: 3})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if c.Name() != string(algo) {
			t.Errorf("%s: Name = %q", algo, c.Name())
		}
		for _, p := range pts {
			c.Add(p)
		}
		centers := c.Centers()
		if len(centers) != 3 {
			t.Errorf("%s: %d centers, want 3", algo, len(centers))
		}
		for _, ctr := range centers {
			if len(ctr) != 2 {
				t.Errorf("%s: center dim %d", algo, len(ctr))
			}
		}
		if c.PointsStored() <= 0 {
			t.Errorf("%s: PointsStored = %d", algo, c.PointsStored())
		}
	}
}

func TestNewUnknownAlgorithm(t *testing.T) {
	if _, err := New("Bogus", Config{K: 3}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0},
		{K: 3, BucketSize: -1},
		{K: 3, MergeDegree: 1},
		{K: 3, RCCOrder: -1},
		{K: 3, Alpha: 0.5},
		{K: 3, Epsilon: 2},
		{K: 3, QueryRuns: -1},
		{K: 3, QueryLloydIters: -1},
		{K: 3, Builder: "nope"},
	}
	for i, cfg := range bad {
		if _, err := New(AlgoCC, cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{K: 30}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BucketSize != 600 {
		t.Errorf("default bucket size %d, want 20k = 600", cfg.BucketSize)
	}
	if cfg.MergeDegree != 2 || cfg.RCCOrder != 3 || cfg.Alpha != 1.2 ||
		cfg.Epsilon != 0.1 || cfg.Builder != BuilderKMeansPP || cfg.Seed != 1 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(AlgoCC, Config{K: 0})
}

func TestAllBuilders(t *testing.T) {
	pts := mixturePoints(1500, 2)
	for _, b := range []BuilderKind{BuilderKMeansPP, BuilderSensitivity, BuilderUniform} {
		c := MustNew(AlgoCC, Config{K: 3, Builder: b})
		for _, p := range pts {
			c.Add(p)
		}
		if got := len(c.Centers()); got != 3 {
			t.Errorf("builder %s: %d centers", b, got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Point {
		c := MustNew(AlgoCC, Config{K: 3, Seed: 99})
		for _, p := range mixturePoints(1000, 3) {
			c.Add(p)
		}
		return c.Centers()
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different centers")
			}
		}
	}
}

func TestCostHelper(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}}
	centers := []Point{{1, 0}}
	if got := Cost(pts, centers); got != 2 {
		t.Fatalf("Cost = %v, want 2", got)
	}
}

func TestKMeansPlusPlusHelper(t *testing.T) {
	pts := mixturePoints(900, 4)
	centers := KMeansPlusPlus(pts, 3, 7, 3, 10)
	if len(centers) != 3 {
		t.Fatalf("got %d centers", len(centers))
	}
	// Batch cost should be near-optimal for this easy mixture: roughly
	// 2 (unit variances, 2 dims) per point.
	if cost := Cost(pts, centers); cost > 6*float64(len(pts)) {
		t.Fatalf("batch cost %v too high", cost)
	}
}

// TestStreamingMatchesBatchOnEasyData is the headline accuracy claim
// (Figure 4): streaming algorithms match batch k-means++ on cost.
func TestStreamingMatchesBatchOnEasyData(t *testing.T) {
	pts := mixturePoints(5000, 5)
	batch := Cost(pts, KMeansPlusPlus(pts, 3, 11, 5, 20))
	for _, algo := range []Algo{AlgoCT, AlgoCC, AlgoRCC, AlgoOnlineCC} {
		c := MustNew(algo, Config{K: 3, QueryRuns: 3, QueryLloydIters: 10})
		for _, p := range pts {
			c.Add(p)
		}
		cost := Cost(pts, c.Centers())
		if cost > 3*batch {
			t.Errorf("%s: cost %v vs batch %v (ratio %.2f)", algo, cost, batch, cost/batch)
		}
	}
}

func TestQueriesBetweenAdds(t *testing.T) {
	c := MustNew(AlgoCC, Config{K: 2, BucketSize: 25})
	pts := mixturePoints(1000, 6)
	for i, p := range pts {
		c.Add(p)
		if i%100 == 7 {
			if got := c.Centers(); len(got) == 0 {
				t.Fatalf("no centers at i=%d", i)
			}
		}
	}
}
