package streamkm

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"streamkm/internal/registry"
)

// Sharded-pipeline coverage at the public backend layer: explicit lane
// counts (the package tests otherwise inherit GOMAXPROCS, which is 1 on
// small CI machines), the wall-clock half-life spec, and the upgrade
// path from the committed pre-sharding golden snapshots.

func shardedSpecs() map[string]BackendSpec {
	return map[string]BackendSpec{
		"decayed":      {Type: BackendDecayed, Algo: AlgoCC, K: 3, Shards: 4, HalfLife: 800},
		"decayed-wall": {Type: BackendDecayed, Algo: AlgoCC, K: 3, Shards: 4, HalfLifeSeconds: 3600},
		"windowed":     {Type: BackendWindowed, K: 3, Shards: 4, WindowN: 5000},
	}
}

func numShards(t *testing.T, b Backend) int {
	t.Helper()
	s, ok := b.(interface{ NumShards() int })
	if !ok {
		t.Fatalf("%T does not report a lane count", b)
	}
	return s.NumShards()
}

// TestShardedBackendSnapshotRoundTrip: explicit 4-lane decayed (both
// half-life encodings) and windowed backends snapshot through the v4
// sub-envelopes and restore with lanes, counts, spec and clustering
// cost intact.
func TestShardedBackendSnapshotRoundTrip(t *testing.T) {
	pts := backendStream(2000, 42)
	for name, spec := range shardedSpecs() {
		t.Run(name, func(t *testing.T) {
			cfg := Config{BucketSize: 60, Seed: 5}
			b, err := Open(spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b.AddBatch(pts[:1500])
			b.AddWeighted(pts[1500], 2.5)
			b.AddBatch(pts[1501:])
			if b.Count() != 2000 {
				t.Fatalf("count %d, want 2000", b.Count())
			}
			if got := numShards(t, b); got != 4 {
				t.Fatalf("%d lanes, want 4", got)
			}
			preCost := Cost(pts, b.Centers())

			var buf bytes.Buffer
			if err := b.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := Restore(spec, bytes.NewReader(buf.Bytes()), Config{Seed: 6})
			if err != nil {
				t.Fatal(err)
			}
			if r.Count() != 2000 {
				t.Fatalf("restored count %d, want 2000", r.Count())
			}
			if got := numShards(t, r); got != 4 {
				t.Fatalf("restored with %d lanes, want 4", got)
			}
			got := r.Spec()
			if got.HalfLife != spec.HalfLife || got.HalfLifeSeconds != spec.HalfLifeSeconds {
				t.Fatalf("restored spec half-lives %+v, want %+v", got, spec)
			}
			postCost := Cost(pts, r.Centers())
			if postCost > 2*preCost || preCost > 2*postCost {
				t.Fatalf("cost after restore %v vs %v", postCost, preCost)
			}
			r.AddBatch(pts[:10])
			if r.Count() != 2010 {
				t.Fatalf("count after resume %d, want 2010", r.Count())
			}
		})
	}
}

// TestSpecFromStreamConfigShards pins the per-tenant shards knob: a
// stream's own "shards" overrides the serving layer's default, zero
// inherits it, and the inverse mapping reports the actual lane count.
func TestSpecFromStreamConfigShards(t *testing.T) {
	sc := registry.StreamConfig{Backend: "decayed", Algo: "CC", K: 3, HalfLife: 100}
	if got := SpecFromStreamConfig(sc, 4).Shards; got != 4 {
		t.Fatalf("unset knob: shards %d, want the default 4", got)
	}
	sc.Shards = 3
	if got := SpecFromStreamConfig(sc, 4).Shards; got != 3 {
		t.Fatalf("shards knob ignored: %d, want 3", got)
	}
	spec := SpecFromStreamConfig(sc, 4)
	if got := spec.StreamConfig().Shards; got != 3 {
		t.Fatalf("inverse mapping dropped shards: %d, want 3", got)
	}
	b, err := Open(spec, Config{BucketSize: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := numShards(t, b); got != 3 {
		t.Fatalf("opened with %d lanes, want 3", got)
	}
	if err := (registry.StreamConfig{Algo: "CC", K: 3, Shards: -1}).Validate(); err == nil {
		t.Error("negative shards accepted")
	}
	if err := (registry.StreamConfig{Algo: "CC", K: 3, Shards: registry.MaxShards + 1}).Validate(); err == nil {
		t.Error("absurd shards accepted")
	}
}

// TestHalfLifeSpecValidation pins the exactly-one rule for the two
// half-life encodings and confines them to the decayed variant.
func TestHalfLifeSpecValidation(t *testing.T) {
	cfg := Config{BucketSize: 60, Seed: 5}
	bad := []BackendSpec{
		{Type: BackendDecayed, K: 3},                                       // neither
		{Type: BackendDecayed, K: 3, HalfLife: 100, HalfLifeSeconds: 60},   // both
		{Type: BackendDecayed, K: 3, HalfLifeSeconds: -1},                  // negative
		{Type: BackendWindowed, K: 3, WindowN: 100, HalfLifeSeconds: 60},   // wrong variant
		{Type: BackendConcurrent, Algo: AlgoCC, K: 3, HalfLifeSeconds: 60}, // wrong variant
		{Type: BackendConcurrent, Algo: AlgoCC, K: 3, HalfLife: 100},       // wrong variant
	}
	for i, spec := range bad {
		if _, err := Open(spec, cfg); err == nil {
			t.Errorf("case %d (%+v): accepted", i, spec)
		}
	}
	// The two valid encodings both open.
	for _, spec := range []BackendSpec{
		{Type: BackendDecayed, Algo: AlgoCC, K: 3, HalfLife: 100},
		{Type: BackendDecayed, Algo: AlgoCC, K: 3, HalfLifeSeconds: 60},
	} {
		if _, err := Open(spec, cfg); err != nil {
			t.Errorf("%+v: %v", spec, err)
		}
	}
}

// TestRestoreGoldenLegacyBackends loads the committed pre-sharding (v3)
// golden snapshots through the public Restore: they come back as
// single-lane pipelines that keep serving and, once re-snapshotted,
// write the current sharded format and restore again.
func TestRestoreGoldenLegacyBackends(t *testing.T) {
	cases := []struct {
		fixture string
		count   int64
	}{
		{"v3-decayed.snap", 700},
		{"v3-windowed.snap", 900},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("internal", "persist", "testdata", tc.fixture))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Restore(BackendSpec{}, bytes.NewReader(raw), Config{BucketSize: 30, Seed: 1})
			if err != nil {
				t.Fatalf("golden %s no longer restores through the backend layer: %v", tc.fixture, err)
			}
			if b.Count() != tc.count {
				t.Fatalf("count %d, want %d", b.Count(), tc.count)
			}
			if got := numShards(t, b); got != 1 {
				t.Fatalf("legacy snapshot restored with %d lanes, want 1", got)
			}
			if len(b.Centers()) == 0 {
				t.Fatal("no centers from restored legacy backend")
			}
			// It keeps ingesting, and its next snapshot is the sharded
			// format, which restores again.
			b.AddBatch([][]float64{{1, 2}, {3, 4}})
			var buf bytes.Buffer
			if err := b.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := Restore(BackendSpec{}, bytes.NewReader(buf.Bytes()), Config{BucketSize: 30, Seed: 1})
			if err != nil {
				t.Fatalf("re-snapshotted legacy backend no longer restores: %v", err)
			}
			if r.Count() != tc.count+2 {
				t.Fatalf("re-restored count %d, want %d", r.Count(), tc.count+2)
			}
		})
	}
}
