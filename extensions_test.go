package streamkm

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, algo := range Algos() {
		c := MustNew(algo, Config{K: 3, BucketSize: 40, Seed: 5})
		pts := mixturePoints(700, 9)
		for _, p := range pts {
			c.Add(p)
		}
		var buf bytes.Buffer
		if err := Save(&buf, c); err != nil {
			t.Fatalf("%s: save: %v", algo, err)
		}
		restored, err := Load(&buf, Config{Seed: 77})
		if err != nil {
			t.Fatalf("%s: load: %v", algo, err)
		}
		if restored.Name() != c.Name() {
			t.Fatalf("%s: restored as %q", algo, restored.Name())
		}
		if restored.PointsStored() != c.PointsStored() {
			t.Fatalf("%s: memory %d != %d", algo, restored.PointsStored(), c.PointsStored())
		}
		// Restored clusterer keeps working.
		for _, p := range mixturePoints(300, 10) {
			restored.Add(p)
		}
		if got := len(restored.Centers()); got != 3 {
			t.Fatalf("%s: %d centers after restore", algo, got)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot")), Config{}); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestSaveRejectsForeignClusterer(t *testing.T) {
	var c fakeClusterer
	var buf bytes.Buffer
	if err := Save(&buf, &c); err == nil {
		t.Fatal("accepted foreign clusterer")
	}
}

type fakeClusterer struct{}

func (*fakeClusterer) Add(Point)                  {}
func (*fakeClusterer) AddWeighted(Point, float64) {}
func (*fakeClusterer) Centers() []Point           { return nil }
func (*fakeClusterer) PointsStored() int          { return 0 }
func (*fakeClusterer) Name() string               { return "fake" }

func TestNewKMedian(t *testing.T) {
	for _, algo := range []Algo{AlgoCT, AlgoCC, AlgoRCC} {
		c, err := NewKMedian(algo, Config{K: 3, BucketSize: 50, QueryRuns: 2, QueryLloydIters: 8})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		pts := mixturePoints(2000, 11)
		for _, p := range pts {
			c.Add(p)
		}
		centers := c.Centers()
		if len(centers) != 3 {
			t.Fatalf("%s: %d centers", algo, len(centers))
		}
		cost := KMedianCost(pts, centers)
		// Unit-variance 2-d clusters: expected distance ~1.25/point.
		if cost > 3*float64(len(pts)) {
			t.Fatalf("%s: k-median cost %v too high", algo, cost)
		}
	}
	if _, err := NewKMedian(AlgoSequential, Config{K: 3}); err == nil {
		t.Fatal("k-median should reject Sequential")
	}
	if _, err := NewKMedian(AlgoCC, Config{K: 0}); err == nil {
		t.Fatal("k-median should validate config")
	}
}

func TestAddWeightedEquivalence(t *testing.T) {
	// Feeding a point with weight 3 must equal feeding it three times for
	// weight-linear algorithms (verified via coreset weight conservation).
	for _, algo := range Algos() {
		a := MustNew(algo, Config{K: 2, BucketSize: 10, Seed: 3})
		b := MustNew(algo, Config{K: 2, BucketSize: 10, Seed: 3})
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 200; i++ {
			p := Point{rng.NormFloat64(), rng.NormFloat64()}
			a.AddWeighted(p, 3)
			b.Add(p)
			b.Add(append(Point(nil), p...))
			b.Add(append(Point(nil), p...))
		}
		ca, cb := a.Centers(), b.Centers()
		if len(ca) != 2 || len(cb) != 2 {
			t.Fatalf("%s: centers %d/%d", algo, len(ca), len(cb))
		}
	}
}

func TestEvaluateQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts []Point
	blobs := [][2]float64{{0, 0}, {60, 60}}
	for i := 0; i < 500; i++ {
		b := blobs[rng.Intn(2)]
		pts = append(pts, Point{b[0] + rng.NormFloat64(), b[1] + rng.NormFloat64()})
	}
	good := Evaluate(pts, []Point{{0, 0}, {60, 60}}, 1)
	if good.Silhouette < 0.8 || good.EmptyClusters != 0 || good.K != 2 || good.N != 500 {
		t.Fatalf("good clustering scored %+v", good)
	}
	bad := Evaluate(pts, []Point{{0, 0}, {2, 2}}, 1)
	if bad.Silhouette >= good.Silhouette || bad.SSQ <= good.SSQ {
		t.Fatalf("bad clustering not worse: %+v vs %+v", bad, good)
	}
}

func TestKMedianCostHelper(t *testing.T) {
	pts := []Point{{3, 4}}
	centers := []Point{{0, 0}}
	if got := KMedianCost(pts, centers); got != 5 {
		t.Fatalf("KMedianCost = %v, want 5", got)
	}
}

func TestNewDecayed(t *testing.T) {
	c, err := NewDecayed(AlgoCC, Config{K: 2, BucketSize: 30}, 150)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2500; i++ {
		c.Add(Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < 800; i++ {
		c.Add(Point{80 + rng.NormFloat64(), 80 + rng.NormFloat64()})
	}
	centers := c.Centers()
	best := math.Inf(1)
	for _, ctr := range centers {
		d := (ctr[0]-80)*(ctr[0]-80) + (ctr[1]-80)*(ctr[1]-80)
		if d < best {
			best = d
		}
	}
	if best > 25 {
		t.Fatalf("decayed clusterer missed recent mass: %v", centers)
	}

	if _, err := NewDecayed(AlgoCC, Config{K: 2}, 0); err == nil {
		t.Fatal("accepted halfLife=0")
	}
	if _, err := NewDecayed(AlgoSequential, Config{K: 2}, 100); err == nil {
		t.Fatal("decay should reject Sequential")
	}
	if _, err := NewDecayed(AlgoCC, Config{K: 0}, 100); err == nil {
		t.Fatal("decay should validate config")
	}
}

func TestNewSharded(t *testing.T) {
	s, err := NewSharded(3, AlgoCC, Config{K: 3, BucketSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 3 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	pts := mixturePoints(3000, 13)
	var wg sync.WaitGroup
	for sh := 0; sh < 3; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for i := sh; i < len(pts); i += 3 {
				s.AddTo(sh, pts[i])
			}
		}(sh)
	}
	wg.Wait()
	centers := s.Centers()
	if len(centers) != 3 {
		t.Fatalf("%d centers", len(centers))
	}
	cost := Cost(pts, centers)
	batch := Cost(pts, KMeansPlusPlus(pts, 3, 7, 3, 10))
	if cost > 4*batch {
		t.Fatalf("sharded cost %v vs batch %v", cost, batch)
	}
	if s.PointsStored() <= 0 {
		t.Fatal("PointsStored")
	}
	if s.Name() != "Sharded[3xCC]" {
		t.Fatalf("Name = %q", s.Name())
	}

	// Round-robin Add also works.
	s2, _ := NewSharded(2, AlgoCT, Config{K: 2})
	for _, p := range mixturePoints(200, 14) {
		s2.Add(p)
	}
	if got := len(s2.Centers()); got != 2 {
		t.Fatalf("round-robin: %d centers", got)
	}

	if _, err := NewSharded(0, AlgoCC, Config{K: 2}); err == nil {
		t.Fatal("accepted 0 shards")
	}
	if _, err := NewSharded(2, AlgoSequential, Config{K: 2}); err == nil {
		t.Fatal("sharding should reject Sequential")
	}
	if _, err := NewSharded(2, AlgoCC, Config{K: -1}); err == nil {
		t.Fatal("sharding should validate config")
	}
}
