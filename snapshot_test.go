package streamkm

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentSnapshotRoundTrip checkpoints a Concurrent mid-stream and
// verifies the restored instance carries every point, the same memory
// footprint, the same algorithm, and a clustering of equivalent quality.
func TestConcurrentSnapshotRoundTrip(t *testing.T) {
	for _, algo := range []Algo{AlgoCT, AlgoCC, AlgoRCC} {
		t.Run(string(algo), func(t *testing.T) {
			pts := mixturePoints(3000, 21)
			c := MustNewConcurrent(algo, 3, Config{K: 3, BucketSize: 30, Seed: 9})
			for i := 0; i < len(pts); i += 50 {
				c.AddBatch(pts[i : i+50])
			}
			pre := c.Centers() // warm the cache so it is snapshotted too

			var buf bytes.Buffer
			if err := c.Snapshot(&buf); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			r, err := NewConcurrentFromSnapshot(&buf, Config{Seed: 77})
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if r.Count() != c.Count() {
				t.Errorf("Count %d, want %d", r.Count(), c.Count())
			}
			if r.PointsStored() != c.PointsStored() {
				t.Errorf("PointsStored %d, want %d", r.PointsStored(), c.PointsStored())
			}
			if r.NumShards() != c.NumShards() {
				t.Errorf("NumShards %d, want %d", r.NumShards(), c.NumShards())
			}
			if r.K() != c.K() || r.Algo() != algo || r.Name() != c.Name() {
				t.Errorf("identity k=%d algo=%s name=%s", r.K(), r.Algo(), r.Name())
			}
			if r.Dim() != 2 {
				t.Errorf("Dim %d, want 2", r.Dim())
			}

			// The cached-centers entry travels with the snapshot: the first
			// query on the restored instance must be a cache hit answering
			// the exact pre-snapshot centers.
			got := r.Centers()
			if hits, misses := r.CacheStats(); hits != 1 || misses != 0 {
				t.Errorf("restored cache hits=%d misses=%d, want 1/0", hits, misses)
			}
			if len(got) != len(pre) {
				t.Fatalf("restored %d centers, want %d", len(got), len(pre))
			}
			for i := range got {
				for j := range got[i] {
					if got[i][j] != pre[i][j] {
						t.Fatalf("restored cached center %d differs: %v vs %v", i, got[i], pre[i])
					}
				}
			}

			// A forced recomputation on the restored state (fresh seed) must
			// cluster as well as the original — the coresets are identical.
			if cost, orig := Cost(pts, r.Refresh()), Cost(pts, pre); cost > 2*orig {
				t.Errorf("restored cost %v vs original %v", cost, orig)
			}
		})
	}
}

// TestConcurrentSnapshotPreservesWeights checks that weighted ingest
// survives a round trip: restored centers must reflect the weights, not
// just the point count.
func TestConcurrentSnapshotPreservesWeights(t *testing.T) {
	c := MustNewConcurrent(AlgoCC, 2, Config{K: 2, BucketSize: 20, Seed: 3})
	// Heavy mass at (100,100), light noise at the origin: with weights
	// intact, one center must sit near (100,100).
	for i := 0; i < 200; i++ {
		c.AddWeighted(Point{100, 100}, 50)
		c.Add(Point{float64(i % 7), float64(i % 5)})
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewConcurrentFromSnapshot(&buf, Config{Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 400 {
		t.Fatalf("Count %d, want 400", r.Count())
	}
	found := false
	for _, ct := range r.Refresh() {
		if dx, dy := ct[0]-100, ct[1]-100; dx*dx+dy*dy < 25 {
			found = true
		}
	}
	if !found {
		t.Errorf("no restored center near the heavy mass: %v", r.Refresh())
	}
}

// TestShardedClustererSnapshotRoundTrip covers the explicit-routing
// variant, including restoration of the round-robin cursor (the next Add
// must land on the shard after the last pre-snapshot one).
func TestShardedClustererSnapshotRoundTrip(t *testing.T) {
	s, err := NewSharded(4, AlgoRCC, Config{K: 3, BucketSize: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := mixturePoints(1500, 8)
	for _, p := range pts {
		s.Add(p)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewShardedFromSnapshot(&buf, Config{Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != s.Count() {
		t.Errorf("Count %d, want %d", r.Count(), s.Count())
	}
	if r.PointsStored() != s.PointsStored() {
		t.Errorf("PointsStored %d, want %d", r.PointsStored(), s.PointsStored())
	}
	if r.NumShards() != 4 || r.Name() != s.Name() {
		t.Errorf("identity shards=%d name=%s", r.NumShards(), r.Name())
	}
	if got := len(r.Centers()); got != 3 {
		t.Errorf("%d centers, want 3", got)
	}
}

// TestSnapshotKindMismatch: single-clusterer snapshots and sharded
// snapshots must not cross-restore.
func TestSnapshotKindMismatch(t *testing.T) {
	single := MustNew(AlgoCC, Config{K: 2})
	for _, p := range mixturePoints(100, 4) {
		single.Add(p)
	}
	var buf bytes.Buffer
	if err := Save(&buf, single); err != nil {
		t.Fatal(err)
	}
	if _, err := NewConcurrentFromSnapshot(bytes.NewReader(buf.Bytes()), Config{}); err == nil {
		t.Error("NewConcurrentFromSnapshot accepted a single-clusterer snapshot")
	}
	if _, err := NewShardedFromSnapshot(bytes.NewReader(buf.Bytes()), Config{}); err == nil {
		t.Error("NewShardedFromSnapshot accepted a single-clusterer snapshot")
	}

	conc := MustNewConcurrent(AlgoCC, 2, Config{K: 2})
	for _, p := range mixturePoints(100, 5) {
		conc.Add(p)
	}
	var cbuf bytes.Buffer
	if err := conc.Snapshot(&cbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(cbuf.Bytes()), Config{}); err == nil {
		t.Error("Load accepted a sharded snapshot")
	}
	// A Concurrent snapshot restores fine as a plain ShardedClusterer
	// (the cache metadata is simply unused).
	if _, err := NewShardedFromSnapshot(bytes.NewReader(cbuf.Bytes()), Config{}); err != nil {
		t.Errorf("NewShardedFromSnapshot on a Concurrent snapshot: %v", err)
	}
}

// TestConcurrentSnapshotUnderIngest takes snapshots while producers
// hammer every shard; each snapshot must decode and restore to a
// consistent state whose count lies between the points applied before the
// snapshot began and those applied when it returned. Run with -race.
func TestConcurrentSnapshotUnderIngest(t *testing.T) {
	const (
		producers = 4
		perProd   = 800
	)
	c := MustNewConcurrent(AlgoCC, producers, Config{K: 3, BucketSize: 20, Seed: 6})
	pts := mixturePoints(perProd, 13)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for _, pt := range pts {
				c.AddTo(shard, pt)
			}
		}(p)
	}

	snaps := make([][]byte, 0, 8)
	bounds := make([][2]int64, 0, 8)
	for i := 0; i < 8; i++ {
		lo := c.Count()
		var buf bytes.Buffer
		if err := c.Snapshot(&buf); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		hi := c.Count()
		snaps = append(snaps, buf.Bytes())
		bounds = append(bounds, [2]int64{lo, hi})
	}
	wg.Wait()

	for i, raw := range snaps {
		r, err := NewConcurrentFromSnapshot(bytes.NewReader(raw), Config{Seed: 17})
		if err != nil {
			t.Fatalf("snapshot %d failed to restore: %v", i, err)
		}
		if n := r.Count(); n < bounds[i][0] || n > bounds[i][1] {
			t.Errorf("snapshot %d count %d outside observed bounds [%d,%d]",
				i, n, bounds[i][0], bounds[i][1])
		}
	}
	if c.Count() != producers*perProd {
		t.Fatalf("final count %d, want %d", c.Count(), producers*perProd)
	}
}
