package main

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestBuildWiresConfigToServer(t *testing.T) {
	c, h, err := build(options{algo: "CC", k: 4, shards: 3, dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumShards() != 3 || c.K() != 4 {
		t.Fatalf("clusterer shards=%d k=%d", c.NumShards(), c.K())
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/x-ndjson",
		strings.NewReader("[1,2]\n[3,4]\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if c.Count() != 2 {
		t.Fatalf("count %d, want 2", c.Count())
	}
	// The configured -dim must be enforced by the HTTP layer.
	resp, err = ts.Client().Post(ts.URL+"/ingest", "application/x-ndjson",
		strings.NewReader("[1,2,3]\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("dim-mismatch status %d, want 400", resp.StatusCode)
	}
}

func TestBuildDefaultsShardsToGOMAXPROCS(t *testing.T) {
	c, _, err := build(options{algo: "RCC", k: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumShards() < 1 {
		t.Fatalf("shards %d", c.NumShards())
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	for _, o := range []options{
		{algo: "Bogus", k: 3},
		{algo: "Sequential", k: 3},
		{algo: "CC", k: 0},
		{algo: "CC", k: 3, alpha: 0.5},
	} {
		if _, _, err := build(o); err == nil {
			t.Errorf("options %+v: expected error", o)
		}
	}
}
