package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildWiresConfigToServer(t *testing.T) {
	c, srv, err := build(options{algo: "CC", k: 4, shards: 3, dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumShards() != 3 || c.K() != 4 {
		t.Fatalf("clusterer shards=%d k=%d", c.NumShards(), c.K())
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/x-ndjson",
		strings.NewReader("[1,2]\n[3,4]\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if c.Count() != 2 {
		t.Fatalf("count %d, want 2", c.Count())
	}
	// The configured -dim must be enforced by the HTTP layer.
	resp, err = ts.Client().Post(ts.URL+"/ingest", "application/x-ndjson",
		strings.NewReader("[1,2,3]\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("dim-mismatch status %d, want 400", resp.StatusCode)
	}
}

func TestBuildDefaultsShardsToGOMAXPROCS(t *testing.T) {
	c, _, err := build(options{algo: "RCC", k: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumShards() < 1 {
		t.Fatalf("shards %d", c.NumShards())
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	for _, o := range []options{
		{algo: "Bogus", k: 3},
		{algo: "Sequential", k: 3},
		{algo: "CC", k: 0},
		{algo: "CC", k: 3, alpha: 0.5},
	} {
		if _, _, err := build(o); err == nil {
			t.Errorf("options %+v: expected error", o)
		}
	}
}

// TestBuildCheckpointRoundTrip is the daemon-level restart path: build
// with -checkpoint (no file yet → fresh), ingest, checkpoint via POST
// /snapshot, then build again with the same flags and observe the state
// back, including flag cross-validation against the restored snapshot.
func TestBuildCheckpointRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.snap")
	o := options{algo: "CC", k: 3, shards: 2, checkpoint: ckpt}

	c1, srv1, err := build(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv1.Handler())
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/x-ndjson",
		strings.NewReader("[1,2]\n[3,4]\n[5,6]\n[7,8]\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = ts.Client().Post(ts.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	ts.Close()

	c2, _, err := build(o)
	if err != nil {
		t.Fatalf("rebuild with checkpoint: %v", err)
	}
	if c2.Count() != c1.Count() {
		t.Fatalf("restored count %d, want %d", c2.Count(), c1.Count())
	}
	if c2.Dim() != 2 {
		t.Fatalf("restored dim %d, want 2", c2.Dim())
	}

	// Flag mismatches against the checkpoint must refuse to boot.
	for _, bad := range []options{
		{algo: "RCC", k: 3, checkpoint: ckpt},
		{algo: "CC", k: 7, checkpoint: ckpt},
		{algo: "CC", k: 3, dim: 9, checkpoint: ckpt},
	} {
		if _, _, err := build(bad); err == nil {
			t.Errorf("options %+v: expected restore validation error", bad)
		}
	}
}

// TestBuildRejectsUnwritableCheckpoint: an unwritable checkpoint location
// must be a boot error, not a string of silently failing ticker writes.
func TestBuildRejectsUnwritableCheckpoint(t *testing.T) {
	o := options{algo: "CC", k: 2, shards: 1,
		checkpoint: filepath.Join(t.TempDir(), "no-such-dir", "state.snap")}
	if _, _, err := build(o); err == nil {
		t.Fatal("expected error for checkpoint in a nonexistent directory")
	}
}

// TestBuildWritesInitialCheckpoint: with -checkpoint set, the state file
// exists as soon as the daemon is built, so even an immediate kill
// restarts cleanly.
func TestBuildWritesInitialCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.snap")
	if _, _, err := build(options{algo: "CC", k: 2, shards: 1, checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no initial checkpoint written: %v", err)
	}
	c, _, err := build(options{algo: "CC", k: 2, shards: 1, checkpoint: ckpt})
	if err != nil {
		t.Fatalf("restart from initial checkpoint: %v", err)
	}
	if c.Count() != 0 {
		t.Fatalf("restored count %d, want 0", c.Count())
	}
}
