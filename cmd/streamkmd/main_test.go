package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamkm"
	"streamkm/internal/registry"
)

func ingestBody(t *testing.T, ts *httptest.Server, path, body string) int {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func defaultCount(t *testing.T, reg *registry.Registry, id string) int64 {
	t.Helper()
	in, err := reg.Stat(id)
	if err != nil {
		t.Fatal(err)
	}
	return in.Count
}

func TestBuildWiresConfigToServer(t *testing.T) {
	reg, srv, err := build(options{algo: "CC", k: 4, shards: 3, dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The per-stream backend honors -shards and -k.
	if err := reg.With("default", false, func(_ *registry.Stream, b registry.Backend) error {
		c := b.(*streamkm.Concurrent)
		if c.NumShards() != 3 || c.K() != 4 {
			t.Fatalf("clusterer shards=%d k=%d", c.NumShards(), c.K())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code := ingestBody(t, ts, "/ingest", "[1,2]\n[3,4]\n"); code != 200 {
		t.Fatalf("ingest status %d", code)
	}
	if got := defaultCount(t, reg, "default"); got != 2 {
		t.Fatalf("count %d, want 2", got)
	}
	// The configured -dim must be enforced by the HTTP layer, on the
	// alias and on the explicit route alike.
	if code := ingestBody(t, ts, "/ingest", "[1,2,3]\n"); code != 400 {
		t.Fatalf("dim-mismatch status %d, want 400", code)
	}
	if code := ingestBody(t, ts, "/streams/default/ingest", "[1,2,3]\n"); code != 400 {
		t.Fatalf("dim-mismatch status %d, want 400", code)
	}
}

func TestBuildDefaultsShardsToGOMAXPROCS(t *testing.T) {
	reg, _, err := build(options{algo: "RCC", k: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg.With("default", false, func(_ *registry.Stream, b registry.Backend) error {
		if b.(*streamkm.Concurrent).NumShards() < 1 {
			t.Fatalf("shards %d", b.(*streamkm.Concurrent).NumShards())
		}
		return nil
	})
}

func TestBuildRejectsBadOptions(t *testing.T) {
	for _, o := range []options{
		{algo: "Bogus", k: 3},
		{algo: "Sequential", k: 3},
		{algo: "CC", k: 0},
		{algo: "CC", k: 3, alpha: 0.5},
		{algo: "CC", k: 3, defaultStream: "../escape"},
		{algo: "CC", k: 3, maxStreams: 4}, // eviction needs -data-dir
	} {
		if _, _, err := build(o); err == nil {
			t.Errorf("options %+v: expected error", o)
		}
	}
}

// TestBuildCheckpointRoundTrip is the daemon-level restart path with the
// legacy single-file flag: build with -checkpoint (no file yet → fresh),
// ingest, checkpoint via POST /snapshot, then build again with the same
// flags and observe the state back, including flag cross-validation
// against the restored snapshot.
func TestBuildCheckpointRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.snap")
	o := options{algo: "CC", k: 3, shards: 2, checkpoint: ckpt}

	reg1, srv1, err := build(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv1.Handler())
	if code := ingestBody(t, ts, "/ingest", "[1,2]\n[3,4]\n[5,6]\n[7,8]\n"); code != 200 {
		t.Fatalf("ingest status %d", code)
	}
	resp, err := ts.Client().Post(ts.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	ts.Close()
	want := defaultCount(t, reg1, "default")

	reg2, _, err := build(o)
	if err != nil {
		t.Fatalf("rebuild with checkpoint: %v", err)
	}
	in, err := reg2.Stat("default")
	if err != nil {
		t.Fatal(err)
	}
	if in.Count != want {
		t.Fatalf("restored count %d, want %d", in.Count, want)
	}
	if in.Dim != 2 {
		t.Fatalf("restored dim %d, want 2", in.Dim)
	}

	// Flag mismatches against the checkpoint must refuse to boot.
	for _, bad := range []options{
		{algo: "RCC", k: 3, checkpoint: ckpt},
		{algo: "CC", k: 7, checkpoint: ckpt},
		{algo: "CC", k: 3, dim: 9, checkpoint: ckpt},
	} {
		if _, _, err := build(bad); err == nil {
			t.Errorf("options %+v: expected restore validation error", bad)
		}
	}
}

// TestBuildDataDirMultiStream is the multi-tenant restart path: several
// tenants ingested into a -data-dir daemon come back — cold, with
// counts intact — after a rebuild from the directory alone.
func TestBuildDataDirMultiStream(t *testing.T) {
	dir := t.TempDir()
	o := options{algo: "CC", k: 3, shards: 2, dataDir: dir, maxStreams: 2}

	reg1, srv1, err := build(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv1.Handler())
	for _, tc := range []struct {
		path string
		n    int
	}{
		{"/ingest", 2},
		{"/streams/alice/ingest", 3},
		{"/streams/bob/ingest", 4},
	} {
		body := strings.Repeat("[1,2]\n", tc.n)
		if code := ingestBody(t, ts, tc.path, body); code != 200 {
			t.Fatalf("%s status %d", tc.path, code)
		}
	}
	ts.Close()
	if st := reg1.Stats(); st.Resident > 2 {
		t.Fatalf("resident %d exceeds -max-streams 2", st.Resident)
	}
	if err := reg1.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	reg2, srv2, err := build(o)
	if err != nil {
		t.Fatalf("rebuild from data dir: %v", err)
	}
	st := reg2.Stats()
	if st.Streams != 3 {
		t.Fatalf("rebooted with %d streams, want 3", st.Streams)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	for id, want := range map[string]int64{"default": 2, "alice": 3, "bob": 4} {
		if got := defaultCount(t, reg2, id); got != want {
			t.Errorf("stream %s restored count %d, want %d", id, got, want)
		}
	}
}

// TestBuildBackendFlagRoundTrip: -backend selects the default stream's
// variant, the spec survives a daemon rebuild from disk, and restarting
// with conflicting backend flags refuses to boot.
func TestBuildBackendFlagRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o := options{backend: "decayed", algo: "CC", k: 3, shards: 2, halfLife: 500, dataDir: dir}

	reg1, srv1, err := build(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv1.Handler())
	if code := ingestBody(t, ts, "/ingest", strings.Repeat("[1,2]\n", 5)); code != 200 {
		t.Fatalf("ingest status %d", code)
	}
	// A windowed tenant rides alongside the decayed default.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/streams/win",
		strings.NewReader(`{"backend":"windowed","window_n":5000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("create windowed tenant: status %d", resp.StatusCode)
	}
	if code := ingestBody(t, ts, "/streams/win/ingest", strings.Repeat("[9,9]\n", 7)); code != 200 {
		t.Fatalf("windowed ingest status %d", code)
	}
	ts.Close()
	if err := reg1.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	reg2, _, err := build(o)
	if err != nil {
		t.Fatalf("rebuild with -backend decayed: %v", err)
	}
	in, err := reg2.Stat("default")
	if err != nil {
		t.Fatal(err)
	}
	if in.Backend != "decayed" || in.HalfLife != 500 || in.Count != 5 {
		t.Fatalf("restored default %+v, want decayed/500/5", in)
	}
	if in, err = reg2.Stat("win"); err != nil || in.Backend != "windowed" || in.WindowN != 5000 || in.Count != 7 {
		t.Fatalf("restored windowed tenant %+v (%v)", in, err)
	}

	// Conflicting flags must refuse to boot over the decayed checkpoint.
	for _, bad := range []options{
		{backend: "concurrent", algo: "CC", k: 3, dataDir: dir},
		{backend: "windowed", algo: "CC", k: 3, windowN: 100, dataDir: dir},
		{backend: "decayed", algo: "CC", k: 3, halfLife: 9999, dataDir: dir},
	} {
		if _, _, err := build(bad); err == nil {
			t.Errorf("options %+v: expected backend validation error", bad)
		}
	}
}

// TestBuildRejectsBadBackendOptions: variant flags are vetted at boot.
func TestBuildRejectsBadBackendOptions(t *testing.T) {
	for _, o := range []options{
		{backend: "bogus", algo: "CC", k: 3},
		{backend: "decayed", algo: "CC", k: 3},  // missing -half-life
		{backend: "windowed", algo: "CC", k: 3}, // missing -window
	} {
		if _, _, err := build(o); err == nil {
			t.Errorf("options %+v: expected error", o)
		}
	}
}

// TestBuildRejectsUnwritableCheckpoint: an unwritable checkpoint location
// must be a boot error, not a string of silently failing ticker writes.
func TestBuildRejectsUnwritableCheckpoint(t *testing.T) {
	o := options{algo: "CC", k: 2, shards: 1,
		checkpoint: filepath.Join(t.TempDir(), "no-such-dir", "state.snap")}
	if _, _, err := build(o); err == nil {
		t.Fatal("expected error for checkpoint in a nonexistent directory")
	}
}

// TestBuildWritesInitialCheckpoint: with -checkpoint set, the state file
// exists as soon as the daemon is built, so even an immediate kill
// restarts cleanly.
func TestBuildWritesInitialCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.snap")
	if _, _, err := build(options{algo: "CC", k: 2, shards: 1, checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no initial checkpoint written: %v", err)
	}
	reg, _, err := build(options{algo: "CC", k: 2, shards: 1, checkpoint: ckpt})
	if err != nil {
		t.Fatalf("restart from initial checkpoint: %v", err)
	}
	if got := defaultCount(t, reg, "default"); got != 0 {
		t.Fatalf("restored count %d, want 0", got)
	}
}
