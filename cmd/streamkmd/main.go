// Command streamkmd is the streaming k-means daemon: one process serving
// concurrent ingest and clustering-query traffic for many independent
// streams over HTTP. Per-stream state is a coreset — polylogarithmic in
// the stream, the paper's central smallness result — so tenant density
// is the point: thousands of streams fit one daemon, and the ones that
// do not fit in RAM hibernate to disk at zero cost to their data.
//
// Usage:
//
//	streamkmd -addr :7070 -algo CC -k 10 -shards 8 \
//	          -data-dir /var/lib/streamkmd -max-streams 256 -stream-ttl 10m
//
// Multi-tenant API (streams are created lazily on first ingest):
//
//	printf '[1,2]\n[9,9]\n' | curl -sS --data-binary @- localhost:7070/streams/alice/ingest
//	curl -sS localhost:7070/streams/alice/centers
//	curl -sS localhost:7070/streams/alice/stats
//	curl -sS localhost:7070/streams                     # list all tenants
//	curl -sS -X PUT localhost:7070/streams/bob -d '{"algo":"RCC","k":20}'
//	curl -sS -X DELETE localhost:7070/streams/bob
//	curl -sS localhost:7070/stats                       # registry-wide stats
//
// Each tenant picks its clustering backend in the PUT body: "concurrent"
// (infinite stream — the default), "decayed" (forward exponential decay
// with the given half_life in points, or half_life_seconds of wall-clock
// time) or "windowed" (a hard sliding window over the last window_n
// points). Every variant ingests through -shards parallel lanes:
//
//	curl -sS -X PUT localhost:7070/streams/ads \
//	     -d '{"backend":"decayed","k":20,"half_life":10000}'
//	curl -sS -X PUT localhost:7070/streams/iot \
//	     -d '{"backend":"decayed","k":20,"half_life_seconds":3600}'
//	curl -sS -X PUT localhost:7070/streams/fraud \
//	     -d '{"backend":"windowed","k":10,"window_n":100000}'
//
// -backend (with -half-life / -half-life-seconds / -window) selects the
// default-stream spec for lazily created tenants. All variants
// checkpoint and restore through the same snapshot machinery; a
// snapshot that disagrees with the declared spec refuses to restore.
//
// The pre-registry single-stream endpoints (POST /ingest, GET /centers,
// GET/POST /snapshot) keep working as aliases for the default stream
// (-default-stream, "default" by default), so existing clients and the
// legacy -checkpoint flag are unaffected. With -checkpoint but no
// -data-dir, only the default stream persists: other streams still
// serve, but are memory-only and do not survive a restart.
//
// With -data-dir set, every stream checkpoints to <dir>/<id>.snap: the
// whole directory is re-registered on boot (cold — streams restore
// lazily on first access), the -checkpoint-interval ticker persists
// dirty streams and hibernates ones idle past -stream-ttl, and a final
// checkpoint runs during graceful shutdown. -max-streams bounds how many
// backends are resident at once; the least-recently-used stream beyond
// the bound is checkpointed to its file and dropped from RAM, then
// restored transparently on its next request. Checkpoint writes are
// atomic (temp file + fsync + rename); a crash mid-write never corrupts
// the previous checkpoint.
//
// Observability: logs are structured JSON (log/slog) on stderr. Every
// request runs in a span (W3C traceparent joined when the header is
// present and valid, minted otherwise) with per-stage latency timers;
// GET /debug/traces serves the bounded in-memory ring of recent and
// slowest spans. -slow-request D emits one WARN record per request at
// or over D, naming the dominant stage. -debug-addr serves
// net/http/pprof on its own listener, never on the serving mux. See
// the internal/server package documentation for the full contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"streamkm"
	"streamkm/internal/persist"
	"streamkm/internal/registry"
	"streamkm/internal/server"
)

// options carries the flag values; split from main for testability.
type options struct {
	addr          string
	backend       string
	algo          string
	k             int
	shards        int
	dim           int
	bucket        int
	alpha         float64
	halfLife      float64
	halfLifeSecs  float64
	windowN       int64
	seed          int64
	runs          int
	lloyd         int
	maxBatch      int
	maxBody       int64
	maxPoints     int64
	checkpoint    string
	ckptInterval  time.Duration
	dataDir       string
	maxStreams    int
	streamTTL     time.Duration
	defaultStream string
	slowRequest   time.Duration
	debugAddr     string

	pointsPerSec   float64
	bytesPerSec    float64
	maxResBytes    int64
	thrashRestores int
	thrashWindow   time.Duration
}

// persistent reports whether any state reaches disk.
func (o options) persistent() bool { return o.checkpoint != "" || o.dataDir != "" }

// build wires options into a running-ready registry + server pair. The
// default stream is materialized eagerly — restored from its checkpoint
// when one exists — so configuration errors and flag/checkpoint
// mismatches are boot errors, never a silently wrong model.
func build(o options) (*registry.Registry, *server.Multi, error) {
	if o.shards < 1 {
		o.shards = runtime.GOMAXPROCS(0)
	}
	if o.backend == "" {
		o.backend = string(streamkm.BackendConcurrent)
	}
	if o.defaultStream == "" {
		o.defaultStream = "default"
	}
	if err := registry.ValidateID(o.defaultStream); err != nil {
		return nil, nil, err
	}
	base := streamkm.Config{
		BucketSize:      o.bucket,
		Alpha:           o.alpha,
		Seed:            o.seed,
		QueryRuns:       o.runs,
		QueryLloydIters: o.lloyd,
	}
	var files map[string]string
	if o.checkpoint != "" {
		// Legacy single-file checkpoint: it is simply the default
		// stream's per-stream snapshot path.
		files = map[string]string{o.defaultStream: o.checkpoint}
	}
	reg, err := registry.New(registry.Config{
		MaxResident: o.maxStreams,
		TTL:         o.streamTTL,
		DataDir:     o.dataDir,
		Files:       files,
		Default: registry.StreamConfig{
			Backend: o.backend, Algo: o.algo, K: o.k, Dim: o.dim,
			HalfLife: o.halfLife, HalfLifeSeconds: o.halfLifeSecs, WindowN: o.windowN,
			PointsPerSec: o.pointsPerSec, BytesPerSec: o.bytesPerSec,
			MaxResidentBytes: o.maxResBytes,
		},
		ThrashRestores: o.thrashRestores,
		ThrashWindow:   o.thrashWindow,
		New: func(_ string, sc registry.StreamConfig) (registry.Backend, error) {
			return streamkm.Open(streamkm.SpecFromStreamConfig(sc, o.shards), base)
		},
		Restore: func(_ string, want registry.StreamConfig, r io.Reader) (registry.Backend, registry.StreamConfig, error) {
			b, err := streamkm.Restore(streamkm.SpecFromStreamConfig(want, 0), r, streamkm.Config{
				Seed:            base.Seed,
				Alpha:           base.Alpha,
				QueryRuns:       base.QueryRuns,
				QueryLloydIters: base.QueryLloydIters,
			})
			if err != nil {
				return nil, registry.StreamConfig{}, err
			}
			return b, b.Spec().StreamConfig(), nil
		},
		Peek: func(r io.Reader) (registry.StreamConfig, int64, error) {
			meta, err := persist.PeekBackend(r)
			if err != nil {
				return registry.StreamConfig{}, 0, err
			}
			return registry.StreamConfig{
				Backend: meta.Type, Algo: meta.Algo, K: meta.K, Dim: meta.Dim,
				HalfLife: meta.HalfLife, HalfLifeSeconds: meta.HalfLifeSeconds, WindowN: meta.WindowN,
				PointsPerSec: meta.PointsPerSec, BytesPerSec: meta.BytesPerSec,
				MaxResidentBytes: meta.MaxResidentBytes,
			}, meta.Count, nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if err := reg.With(o.defaultStream, true, func(s *registry.Stream, _ registry.Backend) error {
		return validateDefault(o, s)
	}); err != nil {
		return nil, nil, err
	}
	if o.persistent() {
		// Write a checkpoint immediately: an unwritable location must be
		// a boot error, not a string of ignored ticker failures that void
		// the durability promise on the first kill.
		if _, err := reg.Checkpoint(o.defaultStream); err != nil {
			return nil, nil, fmt.Errorf("checkpoint not writable: %w", err)
		}
	}
	srv := server.NewMulti(reg, server.MultiConfig{
		DefaultStream: o.defaultStream,
		MaxBatch:      o.maxBatch,
		MaxBodyBytes:  o.maxBody,
		MaxPoints:     o.maxPoints,
		SlowRequest:   o.slowRequest,
	})
	return reg, srv, nil
}

// debugMux builds the pprof-only mux served on -debug-addr. The profiles
// are deliberately kept off the serving mux: exposing them on the data
// port would let any tenant trigger CPU profiling of the daemon.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// validateDefault cross-checks the materialized default stream against
// the flags: resuming a CC/k=10 checkpoint into a daemon configured for
// RCC/k=20 — or a concurrent checkpoint into a daemon configured for a
// windowed default — would silently answer wrong queries, so mismatches
// are boot errors. Fresh streams inherit the flags and pass trivially.
func validateDefault(o options, s *registry.Stream) error {
	cfg := s.Config()
	if cfg.Backend != o.backend {
		return fmt.Errorf("checkpoint backend %s does not match -backend %s", cfg.Backend, o.backend)
	}
	if cfg.Algo != o.algo && cfg.Backend != string(streamkm.BackendWindowed) {
		return fmt.Errorf("checkpoint algo %s does not match -algo %s", cfg.Algo, o.algo)
	}
	if cfg.K != o.k {
		return fmt.Errorf("checkpoint k=%d does not match -k %d", cfg.K, o.k)
	}
	if cfg.HalfLife != o.halfLife && cfg.Backend == string(streamkm.BackendDecayed) {
		return fmt.Errorf("checkpoint half-life %v does not match -half-life %v", cfg.HalfLife, o.halfLife)
	}
	if cfg.HalfLifeSeconds != o.halfLifeSecs && cfg.Backend == string(streamkm.BackendDecayed) {
		return fmt.Errorf("checkpoint wall-clock half-life %v does not match -half-life-seconds %v", cfg.HalfLifeSeconds, o.halfLifeSecs)
	}
	if cfg.WindowN != o.windowN && cfg.Backend == string(streamkm.BackendWindowed) {
		return fmt.Errorf("checkpoint window %d does not match -window %d", cfg.WindowN, o.windowN)
	}
	if o.dim > 0 && s.Dim() > 0 && s.Dim() != o.dim {
		return fmt.Errorf("checkpoint dimension %d does not match -dim %d", s.Dim(), o.dim)
	}
	s.AdoptDim(o.dim)
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":7070", "listen address")
	flag.StringVar(&o.backend, "backend", "concurrent", "default-stream backend variant (concurrent, decayed, windowed); tenants override per stream via PUT")
	flag.StringVar(&o.algo, "algo", "CC", "summary structure per shard (CT, CC, RCC)")
	flag.IntVar(&o.k, "k", 10, "number of cluster centers")
	flag.IntVar(&o.shards, "shards", 0, "ingest shards per stream (0 = GOMAXPROCS)")
	flag.IntVar(&o.dim, "dim", 0, "point dimension (0 = adopt from first point, per stream)")
	flag.IntVar(&o.bucket, "bucket", 0, "coreset bucket size m (0 = 20*k)")
	flag.Float64Var(&o.alpha, "alpha", 0, "centers-cache staleness threshold (>1; 0 = default 1.2)")
	flag.Float64Var(&o.halfLife, "half-life", 0, "decay half-life in points for -backend decayed (mutually exclusive with -half-life-seconds)")
	flag.Float64Var(&o.halfLifeSecs, "half-life-seconds", 0, "decay half-life in wall-clock seconds for -backend decayed (mutually exclusive with -half-life)")
	flag.Int64Var(&o.windowN, "window", 0, "sliding-window length in points for -backend windowed")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.runs, "queryruns", 1, "k-means++ restarts per query recomputation")
	flag.IntVar(&o.lloyd, "lloyd", 0, "Lloyd refinement iterations per query recomputation")
	flag.IntVar(&o.maxBatch, "maxbatch", 0, "points applied per shard-lock acquisition during ingest (0 = 512)")
	flag.Int64Var(&o.maxBody, "max-body", 0, "max ingest request body bytes, 413 beyond (0 = 64MiB, -1 = unlimited)")
	flag.Int64Var(&o.maxPoints, "max-points", 0, "max points per ingest request, 413 beyond (0 = ~1M, -1 = unlimited)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "default stream's checkpoint file: restore on boot, write on ticker and shutdown")
	flag.DurationVar(&o.ckptInterval, "checkpoint-interval", time.Minute, "interval between periodic checkpoints and TTL sweeps (needs -checkpoint or -data-dir; 0 disables the ticker)")
	flag.StringVar(&o.dataDir, "data-dir", "", "per-stream checkpoint directory (<id>.snap): restore all on boot, hibernate cold streams into it")
	flag.IntVar(&o.maxStreams, "max-streams", 0, "max streams resident in RAM; LRU beyond this hibernates to -data-dir (0 = unbounded)")
	flag.DurationVar(&o.streamTTL, "stream-ttl", 0, "hibernate streams idle longer than this to -data-dir (0 = never)")
	flag.StringVar(&o.defaultStream, "default-stream", "default", "stream served by the legacy single-stream endpoints")
	flag.Float64Var(&o.pointsPerSec, "points-per-sec", 0, "default per-stream ingest quota in points/sec, 429 beyond (0 = unlimited; tenants override per stream via PUT)")
	flag.Float64Var(&o.bytesPerSec, "bytes-per-sec", 0, "default per-stream ingest quota in body bytes/sec, 429 beyond (0 = unlimited)")
	flag.Int64Var(&o.maxResBytes, "max-resident-bytes", 0, "default per-stream cap on resident stored-point bytes, 429 beyond (0 = unlimited)")
	flag.IntVar(&o.thrashRestores, "thrash-restores", 0, "shed accesses with 429 once a stream restores this many times within -thrash-window (0 = never shed)")
	flag.DurationVar(&o.thrashWindow, "thrash-window", time.Minute, "window for -thrash-restores churn detection")
	flag.DurationVar(&o.slowRequest, "slow-request", 0, "log one structured record per request slower than this, with its dominant stage (0 = disabled)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve net/http/pprof on this address (never on the serving mux; empty = disabled)")
	flag.Parse()
	if o.shards < 1 {
		o.shards = runtime.GOMAXPROCS(0) // mirror build's default for accurate logs
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	reg, srv, err := build(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamkmd: %v\n", err)
		os.Exit(2)
	}
	st := reg.Stats()
	if o.persistent() && st.Streams > 0 {
		if in, err := reg.Stat(o.defaultStream); err == nil && in.Count > 0 {
			logger.Info("restored default stream", "stream", o.defaultStream, "points", in.Count)
		}
		if st.Streams > 1 {
			logger.Info("registered streams from disk", "streams", st.Streams, "resident", st.Resident)
		}
	}
	hs := &http.Server{Addr: o.addr, Handler: srv.Handler()}

	if o.debugAddr != "" {
		go func() {
			logger.Info("serving pprof", "debug_addr", o.debugAddr)
			if err := http.ListenAndServe(o.debugAddr, debugMux()); err != nil {
				logger.Error("debug listener failed", "debug_addr", o.debugAddr, "error", err)
			}
		}()
	}

	go func() {
		logger.Info("serving",
			"backend", o.backend, "algo", o.algo, "k", o.k, "shards", o.shards,
			"addr", o.addr, "default_stream", o.defaultStream, "max_resident", o.maxStreams)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("listen failed", "addr", o.addr, "error", err)
			os.Exit(1)
		}
	}()

	done := make(chan struct{})
	if o.persistent() && o.ckptInterval > 0 {
		go func() {
			ticker := time.NewTicker(o.ckptInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if n := reg.Sweep(); n > 0 {
						logger.Info("hibernated idle streams", "streams", n)
					}
					// Dirty resident streams only; idle ones cost nothing.
					if err := reg.CheckpointAll(); err != nil {
						logger.Error("periodic checkpoint failed", "error", err)
					}
				case <-done:
					return
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	close(done)
	st = reg.Stats()
	logger.Info("shutting down", "streams", st.Streams, "resident", st.Resident)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Error("shutdown failed", "error", err)
	}
	// Final checkpoint after the listener has drained, so the files hold
	// every point any client got an ack for.
	if o.persistent() {
		if err := reg.CheckpointAll(); err != nil {
			logger.Error("final checkpoint failed", "error", err)
		} else {
			logger.Info("final checkpoint complete")
		}
	}
}
