// Command streamkmd is the streaming k-means daemon: it serves concurrent
// ingest and clustering-query traffic over HTTP, backed by
// streamkm.Concurrent (P-way sharded ingest, cached-centers fast-path
// queries — see the paper's CC/RCC algorithms for why queries are cheap
// enough to serve inline).
//
// Usage:
//
//	streamkmd -addr :7070 -algo CC -k 10 -shards 8
//
// Then:
//
//	printf '[1,2]\n[1.1,2.2]\n[9,9]\n' | curl -sS --data-binary @- localhost:7070/ingest
//	curl -sS localhost:7070/centers
//	curl -sS localhost:7070/stats
//	curl -sS localhost:7070/healthz
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"streamkm"
	"streamkm/internal/server"
)

// options carries the flag values; split from main for testability.
type options struct {
	addr     string
	algo     string
	k        int
	shards   int
	dim      int
	bucket   int
	alpha    float64
	seed     int64
	runs     int
	lloyd    int
	maxBatch int
}

// build wires options into a running-ready handler. It returns the
// backing clusterer too so callers (and tests) can inspect it.
func build(o options) (*streamkm.Concurrent, http.Handler, error) {
	if o.shards < 1 {
		o.shards = runtime.GOMAXPROCS(0)
	}
	c, err := streamkm.NewConcurrent(streamkm.Algo(o.algo), o.shards, streamkm.Config{
		K:               o.k,
		BucketSize:      o.bucket,
		Alpha:           o.alpha,
		Seed:            o.seed,
		QueryRuns:       o.runs,
		QueryLloydIters: o.lloyd,
	})
	if err != nil {
		return nil, nil, err
	}
	srv := server.New(c, server.Config{K: o.k, Dim: o.dim, MaxBatch: o.maxBatch})
	return c, srv.Handler(), nil
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":7070", "listen address")
	flag.StringVar(&o.algo, "algo", "CC", "summary structure per shard (CT, CC, RCC)")
	flag.IntVar(&o.k, "k", 10, "number of cluster centers")
	flag.IntVar(&o.shards, "shards", 0, "ingest shards (0 = GOMAXPROCS)")
	flag.IntVar(&o.dim, "dim", 0, "point dimension (0 = adopt from first point)")
	flag.IntVar(&o.bucket, "bucket", 0, "coreset bucket size m (0 = 20*k)")
	flag.Float64Var(&o.alpha, "alpha", 0, "centers-cache staleness threshold (>1; 0 = default 1.2)")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.runs, "queryruns", 1, "k-means++ restarts per query recomputation")
	flag.IntVar(&o.lloyd, "lloyd", 0, "Lloyd refinement iterations per query recomputation")
	flag.IntVar(&o.maxBatch, "maxbatch", 0, "points applied per shard-lock acquisition during ingest (0 = 512)")
	flag.Parse()

	c, h, err := build(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamkmd: %v\n", err)
		os.Exit(2)
	}
	hs := &http.Server{Addr: o.addr, Handler: h}

	go func() {
		log.Printf("streamkmd: serving %s (k=%d, %d shards) on %s", c.Name(), c.K(), c.NumShards(), o.addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("streamkmd: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	log.Printf("streamkmd: shutting down (%d points observed)", c.Count())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("streamkmd: shutdown: %v", err)
	}
}
