// Command streamkmd is the streaming k-means daemon: it serves concurrent
// ingest and clustering-query traffic over HTTP, backed by
// streamkm.Concurrent (P-way sharded ingest, cached-centers fast-path
// queries — see the paper's CC/RCC algorithms for why queries are cheap
// enough to serve inline).
//
// Usage:
//
//	streamkmd -addr :7070 -algo CC -k 10 -shards 8 \
//	          -checkpoint /var/lib/streamkmd/state.snap -checkpoint-interval 30s
//
// Then:
//
//	printf '[1,2]\n[1.1,2.2]\n[9,9]\n' | curl -sS --data-binary @- localhost:7070/ingest
//	curl -sS localhost:7070/centers
//	curl -sS localhost:7070/stats
//	curl -sS localhost:7070/healthz
//	curl -sS -X POST localhost:7070/snapshot          # checkpoint now
//	curl -sS localhost:7070/snapshot -o backup.snap   # off-box backup
//
// With -checkpoint set, the daemon restores its clustering state from the
// file at boot (validating -algo, -k and -dim against the snapshot),
// checkpoints it on the -checkpoint-interval ticker, and writes a final
// checkpoint during graceful shutdown on SIGINT/SIGTERM — so a restart
// loses no ingested weight, only the handful of points that arrived after
// the last checkpoint on a hard kill. Checkpoint writes are atomic (temp
// file + fsync + rename); a crash mid-write never corrupts the previous
// checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"streamkm"
	"streamkm/internal/server"
)

// options carries the flag values; split from main for testability.
type options struct {
	addr         string
	algo         string
	k            int
	shards       int
	dim          int
	bucket       int
	alpha        float64
	seed         int64
	runs         int
	lloyd        int
	maxBatch     int
	checkpoint   string
	ckptInterval time.Duration
}

// build wires options into a running-ready clusterer + server pair. When a
// checkpoint file exists at o.checkpoint, the clusterer is restored from
// it instead of starting empty; the restored state must agree with the
// -algo, -k and -dim flags, so a misconfigured restart fails loudly
// instead of silently serving the wrong model.
func build(o options) (*streamkm.Concurrent, *server.Server, error) {
	if o.shards < 1 {
		o.shards = runtime.GOMAXPROCS(0)
	}
	cfg := streamkm.Config{
		K:               o.k,
		BucketSize:      o.bucket,
		Alpha:           o.alpha,
		Seed:            o.seed,
		QueryRuns:       o.runs,
		QueryLloydIters: o.lloyd,
	}
	c, restored, err := openOrCreate(o, cfg)
	if err != nil {
		return nil, nil, err
	}
	dim := o.dim
	if dim == 0 && restored {
		dim = c.Dim() // keep the restored stream's dimension authoritative
	}
	srv := server.New(c, server.Config{
		K:            c.K(),
		Dim:          dim,
		MaxBatch:     o.maxBatch,
		SnapshotPath: o.checkpoint,
	})
	if o.checkpoint != "" {
		// Write a checkpoint immediately: an unwritable path must be a
		// boot error, not a string of ignored ticker failures that void
		// the durability promise on the first kill.
		if _, err := srv.WriteCheckpoint(); err != nil {
			return nil, nil, fmt.Errorf("checkpoint %s not writable: %w", o.checkpoint, err)
		}
	}
	return c, srv, nil
}

// openOrCreate restores the clusterer from o.checkpoint when the file
// exists, and builds a fresh one otherwise. The second return reports
// whether a restore happened.
func openOrCreate(o options, cfg streamkm.Config) (*streamkm.Concurrent, bool, error) {
	if o.checkpoint != "" {
		f, err := os.Open(o.checkpoint)
		switch {
		case err == nil:
			defer f.Close()
			c, err := streamkm.NewConcurrentFromSnapshot(f, streamkm.Config{
				Seed:            cfg.Seed,
				Alpha:           cfg.Alpha,
				QueryRuns:       cfg.QueryRuns,
				QueryLloydIters: cfg.QueryLloydIters,
			})
			if err != nil {
				return nil, false, fmt.Errorf("restore %s: %w", o.checkpoint, err)
			}
			if err := validateRestored(c, o); err != nil {
				return nil, false, fmt.Errorf("restore %s: %w", o.checkpoint, err)
			}
			return c, true, nil
		case !errors.Is(err, os.ErrNotExist):
			return nil, false, fmt.Errorf("checkpoint %s: %w", o.checkpoint, err)
		}
	}
	c, err := streamkm.NewConcurrent(streamkm.Algo(o.algo), o.shards, cfg)
	if err != nil {
		return nil, false, err
	}
	return c, false, nil
}

// validateRestored cross-checks a restored clusterer against the flags:
// resuming a CC/k=10 checkpoint into a daemon configured for RCC/k=20
// would silently answer wrong queries, so mismatches are boot errors.
func validateRestored(c *streamkm.Concurrent, o options) error {
	if string(c.Algo()) != o.algo {
		return fmt.Errorf("checkpoint algo %s does not match -algo %s", c.Algo(), o.algo)
	}
	if c.K() != o.k {
		return fmt.Errorf("checkpoint k=%d does not match -k %d", c.K(), o.k)
	}
	if o.dim > 0 && c.Dim() > 0 && c.Dim() != o.dim {
		return fmt.Errorf("checkpoint dimension %d does not match -dim %d", c.Dim(), o.dim)
	}
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":7070", "listen address")
	flag.StringVar(&o.algo, "algo", "CC", "summary structure per shard (CT, CC, RCC)")
	flag.IntVar(&o.k, "k", 10, "number of cluster centers")
	flag.IntVar(&o.shards, "shards", 0, "ingest shards (0 = GOMAXPROCS)")
	flag.IntVar(&o.dim, "dim", 0, "point dimension (0 = adopt from first point)")
	flag.IntVar(&o.bucket, "bucket", 0, "coreset bucket size m (0 = 20*k)")
	flag.Float64Var(&o.alpha, "alpha", 0, "centers-cache staleness threshold (>1; 0 = default 1.2)")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.runs, "queryruns", 1, "k-means++ restarts per query recomputation")
	flag.IntVar(&o.lloyd, "lloyd", 0, "Lloyd refinement iterations per query recomputation")
	flag.IntVar(&o.maxBatch, "maxbatch", 0, "points applied per shard-lock acquisition during ingest (0 = 512)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file: restore on boot, write on ticker and shutdown")
	flag.DurationVar(&o.ckptInterval, "checkpoint-interval", time.Minute, "interval between periodic checkpoints (needs -checkpoint; 0 disables the ticker)")
	flag.Parse()

	c, srv, err := build(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamkmd: %v\n", err)
		os.Exit(2)
	}
	if o.checkpoint != "" && c.Count() > 0 {
		log.Printf("streamkmd: restored %d points from %s", c.Count(), o.checkpoint)
	}
	hs := &http.Server{Addr: o.addr, Handler: srv.Handler()}

	go func() {
		log.Printf("streamkmd: serving %s (k=%d, %d shards) on %s", c.Name(), c.K(), c.NumShards(), o.addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("streamkmd: %v", err)
		}
	}()

	done := make(chan struct{})
	if o.checkpoint != "" && o.ckptInterval > 0 {
		go func() {
			ticker := time.NewTicker(o.ckptInterval)
			defer ticker.Stop()
			lastCount := c.Count() // build already checkpointed this state
			for {
				select {
				case <-ticker.C:
					count := c.Count()
					if count == lastCount {
						continue // idle: the file already holds this state
					}
					if n, err := srv.WriteCheckpoint(); err != nil {
						log.Printf("streamkmd: checkpoint: %v", err)
					} else {
						lastCount = count
						log.Printf("streamkmd: checkpointed %d points (%d bytes) to %s", count, n, o.checkpoint)
					}
				case <-done:
					return
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	close(done)
	log.Printf("streamkmd: shutting down (%d points observed)", c.Count())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("streamkmd: shutdown: %v", err)
	}
	// Final checkpoint after the listener has drained, so the file holds
	// every point any client got an ack for.
	if o.checkpoint != "" {
		if n, err := srv.WriteCheckpoint(); err != nil {
			log.Printf("streamkmd: final checkpoint: %v", err)
		} else {
			log.Printf("streamkmd: final checkpoint: %d points (%d bytes) to %s", c.Count(), n, o.checkpoint)
		}
	}
}
