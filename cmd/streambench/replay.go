package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamkm/internal/datagen"
	"streamkm/internal/geom"
	"streamkm/internal/metrics"
	"streamkm/internal/trace"
	"streamkm/internal/wire"
)

// replayConfig parameterizes the HTTP load-replay client mode: it streams
// a generated dataset to a running streamkmd daemon from conc concurrent
// producers while a querier hits /centers at the configured interval —
// the paper's ingest-while-querying workload, over the wire. With
// tenants > 1 the dataset is split across that many independent streams
// (/streams/replay-NNN/...), exercising the daemon's multi-tenant
// registry, including eviction/restore churn when the daemon runs with
// -max-streams below the tenant count.
type replayConfig struct {
	url          string   // daemon base URL, e.g. http://localhost:7070
	routers      []string // streamkm-router base URLs: requests round-robin across them and transient handoff refusals (503/502/409) are retried
	dataset      string   // datagen dataset name
	n            int      // points to replay (total across tenants)
	conc         int      // concurrent producers
	batch        int      // points per ingest request
	tenants      int      // number of streams to drive (1 = legacy root endpoints)
	backend      string   // backend spec for created streams ("" = daemon default)
	halfLife     float64  // decay half-life in points for -backend decayed
	halfLifeSecs float64  // wall-clock decay half-life for -backend decayed (overrides halfLife when set)
	windowN      int64    // window length for -backend windowed
	queryEvery   int64    // issue a centers query every this many points (0 = none)
	seed         int64
	jsonOut      string // write a machine-readable result to this file ("" = none)
	wire         string // ingest wire format: "ndjson" (default) or "binary"
}

// binaryWire reports whether ingest batches travel as
// application/x-streamkm-batch bodies instead of ndjson.
func (rc replayConfig) binaryWire() bool { return rc.wire == "binary" }

// wireName normalizes the wire format for reporting: an unset value is
// the ndjson default.
func (rc replayConfig) wireName() string {
	if rc.binaryWire() {
		return "binary"
	}
	return "ndjson"
}

// routerMode reports whether the replay targets streamkm-router
// instances rather than one daemon directly: tenants must then ride the
// /streams routes (the router has no single default stream), and
// transient refusals during tenant handoffs are retried instead of
// failing the run.
func (rc replayConfig) routerMode() bool { return len(rc.routers) > 0 }

// base picks the base URL for the i-th request: round-robin over the
// routers, or the single daemon URL.
func (rc replayConfig) base(i int) string {
	if rc.routerMode() {
		return rc.routers[i%len(rc.routers)]
	}
	return rc.url
}

// useStreams reports whether the replay drives named /streams/... routes
// (multi-tenant, any explicit backend selection — the legacy root
// endpoints cannot carry a spec — or router mode) rather than the legacy
// root endpoints.
func (rc replayConfig) useStreams() bool {
	return rc.tenants > 1 || rc.backend != "" || rc.routerMode()
}

// tenantResult is the per-stream slice of a replay result.
type tenantResult struct {
	Stream     string `json:"stream"`
	Ingested   int64  `json:"ingested"`
	Requests   int64  `json:"requests"`
	FinalCount int64  `json:"final_count"`
	FinalK     int    `json:"final_k"`
}

// slowEntry names one of the slowest requests of a replay run: its wall
// latency and the trace id streambench stamped into the request's
// traceparent header, so the matching server-side span can be pulled
// from /debug/traces on the daemon (and, in router mode, the router).
type slowEntry struct {
	TraceID string  `json:"trace_id"`
	Stream  string  `json:"stream"`
	Ms      float64 `json:"ms"`
}

// replayResult is the machine-readable outcome of one replay run — the
// repo's BENCH_*.json perf-trajectory format. The query_p* fields are
// FIRST-ATTEMPT latencies (what one daemon round trip cost); the
// query_total_p* fields include router-mode retries and their backoff
// sleeps (what the client actually waited). Against a single daemon the
// two families coincide.
type replayResult struct {
	Dataset         string         `json:"dataset"`
	N               int            `json:"n"`
	Dim             int            `json:"dim"`
	Backend         string         `json:"backend,omitempty"`
	Shards          int            `json:"shards,omitempty"`
	Routers         int            `json:"routers,omitempty"`
	Wire            string         `json:"wire"`
	Tenants         int            `json:"tenants"`
	Producers       int            `json:"producers"`
	Batch           int            `json:"batch"`
	WallSeconds     float64        `json:"wall_seconds"`
	Ingested        int64          `json:"ingested"`
	IngestRequests  int64          `json:"ingest_requests"`
	PointsPerSec    float64        `json:"points_per_sec"`
	Throttled       int64          `json:"throttled"`
	Queries         int64          `json:"queries"`
	QueryP50Ms      float64        `json:"query_p50_ms"`
	QueryP95Ms      float64        `json:"query_p95_ms"`
	QueryMaxMs      float64        `json:"query_max_ms"`
	QueryTotalP50Ms float64        `json:"query_total_p50_ms"`
	QueryTotalP95Ms float64        `json:"query_total_p95_ms"`
	QueryTotalMaxMs float64        `json:"query_total_max_ms"`
	SlowestQueries  []slowEntry    `json:"slowest_queries,omitempty"`
	SlowestIngests  []slowEntry    `json:"slowest_ingests,omitempty"`
	Errors          int64          `json:"errors"`
	FirstError      string         `json:"first_error,omitempty"`
	PerTenant       []tenantResult `json:"per_tenant,omitempty"`
	UnixTime        int64          `json:"unix_time"`
}

// slowCap is how many slowest queries/ingests the artifact names.
const slowCap = 5

// topSlow keeps the slowCap slowest requests seen so far, slowest
// first. Producers hit it once per request, so it stays a small sorted
// slice under one mutex rather than a heap.
type topSlow struct {
	mu      sync.Mutex
	entries []slowEntry
}

func (t *topSlow) add(traceID, stream string, ms float64) {
	if stream == "" {
		stream = "(default)"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Ms < ms })
	if i >= slowCap {
		return
	}
	t.entries = append(t.entries, slowEntry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = slowEntry{TraceID: traceID, Stream: stream, Ms: ms}
	if len(t.entries) > slowCap {
		t.entries = t.entries[:slowCap]
	}
}

func (t *topSlow) list() []slowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]slowEntry(nil), t.entries...)
}

// replayStats aggregates what the producers and the querier observed.
type replayStats struct {
	ingested  atomic.Int64
	requests  atomic.Int64
	throttled atomic.Int64
	queries   atomic.Int64
	mu        sync.Mutex
	queryMs   []float64 // first-attempt latency per successful query
	queryTot  []float64 // total latency incl. router-mode retries/backoff
	firstErr  atomic.Pointer[error]
	errorsHit atomic.Int64
	abort     chan struct{} // closed on the first request error
	abortOnce sync.Once

	slowQueries topSlow
	slowIngests topSlow
	perTenant   []tenantCounters
}

type tenantCounters struct {
	ingested atomic.Int64
	requests atomic.Int64
}

func (st *replayStats) fail(err error) {
	st.errorsHit.Add(1)
	st.firstErr.CompareAndSwap(nil, &err)
	st.abortOnce.Do(func() { close(st.abort) })
}

// tenantName returns the stream id of tenant t, "" in single-tenant
// (legacy endpoint) mode. Explicit-backend runs embed the variant in the
// id, so replay comparisons across -backend values against one daemon
// never collide on stream names.
func (rc replayConfig) tenantName(t int) string {
	if !rc.useStreams() {
		return ""
	}
	if rc.backend != "" {
		return fmt.Sprintf("replay-%s-%03d", rc.backend, t)
	}
	return fmt.Sprintf("replay-%03d", t)
}

// fetchShards reads the ingest lane count from a stream's /stats
// endpoint. Best effort: 0 (omitted from JSON output) on any error or
// when the backend is unsharded.
func fetchShards(client *http.Client, url string) int {
	resp, err := client.Get(url)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	var body struct {
		Shards int `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0
	}
	return body.Shards
}

// tenantPath prefixes an endpoint with the tenant's stream route.
func tenantPath(base, stream, endpoint string) string {
	if stream == "" {
		return base + endpoint
	}
	return base + "/streams/" + stream + endpoint
}

// runReplay generates the dataset, replays it over HTTP, and prints a
// summary table (plus a JSON result file when configured). It returns an
// error if the daemon was unreachable or any request failed.
func runReplay(rc replayConfig) error {
	ds, err := datagen.ByName(rc.dataset, rc.n, rc.seed)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 60 * time.Second}
	bases := []string{rc.url}
	if rc.routerMode() {
		bases = rc.routers
	}
	for _, base := range bases {
		if err := checkHealth(client, base); err != nil {
			return fmt.Errorf("target not healthy at %s: %v", base, err)
		}
	}

	// Stream-routed runs create every stream up front (the explicit-create
	// API, carrying the backend spec when one was selected), so the
	// querier can rotate over all tenants from the first acknowledged
	// batch without racing lazy creation.
	if rc.useStreams() {
		for tn := 0; tn < rc.tenants; tn++ {
			if err := ensureStream(client, rc.base(tn), rc.tenantName(tn), rc.specBody()); err != nil {
				return err
			}
		}
	}

	st := &replayStats{
		perTenant: make([]tenantCounters, rc.tenants),
		abort:     make(chan struct{}),
	}
	start := time.Now()

	// Querier: polls the shared progress counter and issues a centers
	// query — rotating across tenants — each time another queryEvery
	// points have been acknowledged.
	done := make(chan struct{})
	var qwg sync.WaitGroup
	if rc.queryEvery > 0 {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			next := rc.queryEvery
			tenant := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				if st.ingested.Load() >= next {
					next += rc.queryEvery
					queryCenters(client, rc, tenantPath(rc.base(tenant), rc.tenantName(tenant), "/centers"), rc.tenantName(tenant), st, false)
					tenant = (tenant + 1) % rc.tenants
				} else {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
	}

	// Work queue: each job is one ingest request for one tenant's slice
	// of the stream; conc workers drain it, so producer concurrency and
	// tenant count vary independently.
	type job struct {
		tenant int
		pts    []geom.Point
	}
	jobs := make(chan job, rc.conc*2)
	var pwg sync.WaitGroup
	var reqSeq atomic.Int64
	for w := 0; w < rc.conc; w++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for j := range jobs {
				select {
				case <-st.abort:
					continue // a request already failed; drain without posting
				default:
				}
				// Round-robin over routers per request; in router mode a
				// transient refusal (a tenant mid-handoff answers 503 with
				// Retry-After, a daemon mid-restart 502, a quota-throttled
				// 429) is retried on the next router rather than failing the
				// run — exactly the client contract the handoff window and
				// the quota layer define. When the server sent a Retry-After
				// hint the sleep honors it (capped); otherwise the historical
				// 50ms backoff applies.
				var err error
				var retryAfter time.Duration
				for attempt := 0; attempt < rc.maxAttempts(); attempt++ {
					url := tenantPath(rc.base(int(reqSeq.Add(1))), rc.tenantName(j.tenant), "/ingest")
					retryAfter, err = postBatch(client, url, rc.tenantName(j.tenant), rc.binaryWire(), j.pts, st, j.tenant)
					if err == nil || !rc.routerMode() || !errors.Is(err, errTransient) {
						break
					}
					time.Sleep(retryBackoff(retryAfter))
				}
				if err != nil {
					st.fail(err)
				}
			}
		}()
	}
	for tn := 0; tn < rc.tenants; tn++ {
		lo := tn * len(ds.Points) / rc.tenants
		hi := (tn + 1) * len(ds.Points) / rc.tenants
		for off := lo; off < hi; off += rc.batch {
			end := off + rc.batch
			if end > hi {
				end = hi
			}
			jobs <- job{tenant: tn, pts: ds.Points[off:end]}
		}
	}
	close(jobs)
	pwg.Wait()
	close(done)
	qwg.Wait()
	wall := time.Since(start)

	// Final authoritative per-tenant query (forced recomputation).
	res := replayResult{
		Dataset:        ds.Name,
		N:              ds.N(),
		Dim:            ds.Dim,
		Backend:        rc.backend,
		Wire:           rc.wireName(),
		Routers:        len(rc.routers),
		Tenants:        rc.tenants,
		Producers:      rc.conc,
		Batch:          rc.batch,
		WallSeconds:    wall.Seconds(),
		Ingested:       st.ingested.Load(),
		IngestRequests: st.requests.Load(),
		Throttled:      st.throttled.Load(),
		PointsPerSec:   float64(st.ingested.Load()) / wall.Seconds(),
		UnixTime:       time.Now().Unix(),
	}
	aborted := false
	select {
	case <-st.abort:
		aborted = true // daemon already failing; skip the final query sweep
	default:
	}
	for tn := 0; tn < rc.tenants; tn++ {
		var count int64
		var k int
		if !aborted {
			count, k = queryCenters(client, rc, tenantPath(rc.base(tn), rc.tenantName(tn), "/centers"), rc.tenantName(tn), st, true)
		}
		name := rc.tenantName(tn)
		if name == "" {
			name = "(default)"
		}
		res.PerTenant = append(res.PerTenant, tenantResult{
			Stream:     name,
			Ingested:   st.perTenant[tn].ingested.Load(),
			Requests:   st.perTenant[tn].requests.Load(),
			FinalCount: count,
			FinalK:     k,
		})
	}
	if rc.useStreams() && !aborted {
		res.Shards = fetchShards(client, tenantPath(rc.base(0), rc.tenantName(0), "/stats"))
	}
	st.mu.Lock()
	res.Queries = st.queries.Load()
	res.QueryP50Ms = metrics.Percentile(st.queryMs, 0.5)
	res.QueryP95Ms = metrics.Percentile(st.queryMs, 0.95)
	res.QueryMaxMs = metrics.Percentile(st.queryMs, 1)
	res.QueryTotalP50Ms = metrics.Percentile(st.queryTot, 0.5)
	res.QueryTotalP95Ms = metrics.Percentile(st.queryTot, 0.95)
	res.QueryTotalMaxMs = metrics.Percentile(st.queryTot, 1)
	st.mu.Unlock()
	res.SlowestQueries = st.slowQueries.list()
	res.SlowestIngests = st.slowIngests.list()
	res.Errors = st.errorsHit.Load()
	if ep := st.firstErr.Load(); ep != nil {
		res.FirstError = (*ep).Error()
	}

	target := rc.url
	if rc.routerMode() {
		target = fmt.Sprintf("%d router(s) at %s", len(rc.routers), strings.Join(rc.routers, " "))
	}
	t := metrics.NewTable(
		fmt.Sprintf("HTTP replay of %s (%d pts, dim %d, %s wire) against %s", ds.Name, ds.N(), ds.Dim, rc.wireName(), target),
		"tenants", "producers", "batch", "points", "ingest reqs", "wall", "points/s",
		"queries", "q p50 ms", "q p95 ms")
	t.AddRow(rc.tenants, rc.conc, rc.batch, res.Ingested, res.IngestRequests,
		wall.Round(time.Millisecond).String(), res.PointsPerSec,
		res.Queries, res.QueryP50Ms, res.QueryP95Ms)
	fmt.Println(t.String())

	if rc.tenants > 1 {
		tt := metrics.NewTable("per-tenant", "stream", "ingested", "reqs", "final count", "final k")
		for _, tr := range res.PerTenant {
			tt.AddRow(tr.Stream, tr.Ingested, tr.Requests, tr.FinalCount, tr.FinalK)
		}
		fmt.Println(tt.String())
	}

	if rc.jsonOut != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(rc.jsonOut, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", rc.jsonOut, err)
		}
		fmt.Printf("wrote %s\n", rc.jsonOut)
	}
	// The JSON result (with errors/first_error populated) is written even
	// for a failed run, so CI keeps the artifact; the run still fails.
	if ep := st.firstErr.Load(); ep != nil {
		return fmt.Errorf("replay hit %d request errors; first: %v", res.Errors, *ep)
	}
	return printServerStats(client, rc.base(0))
}

// specBody renders the PUT body selecting the replay's backend spec;
// empty when the daemon default should apply.
func (rc replayConfig) specBody() string {
	if rc.backend == "" {
		return ""
	}
	spec := map[string]interface{}{"backend": rc.backend}
	switch rc.backend {
	case "decayed":
		if rc.halfLifeSecs > 0 {
			spec["half_life_seconds"] = rc.halfLifeSecs
		} else {
			spec["half_life"] = rc.halfLife
		}
	case "windowed":
		spec["window_n"] = rc.windowN
	}
	raw, _ := json.Marshal(spec)
	return string(raw)
}

// ensureStream creates a tenant stream (with the given spec body, or the
// daemon's default configuration when empty); an already-existing stream
// (409) is fine — the daemon's PUT-vs-restore validation guarantees an
// existing stream with a conflicting spec fails on access rather than
// silently serving the wrong variant.
func ensureStream(client *http.Client, base, stream, body string) error {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/streams/"+stream, rd)
	if err != nil {
		return err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("create stream %s: status %d (multi-tenant replay needs a registry-enabled daemon)", stream, resp.StatusCode)
	}
	return nil
}

// checkHealth probes /healthz.
func checkHealth(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// errTransient marks replay request failures that router mode retries:
// a tenant mid-handoff (503/409), a daemon briefly unreachable behind
// the router (502/504), or a quota-throttled request (429).
var errTransient = errors.New("transient")

// transientStatus classifies router-mode retriable statuses.
func transientStatus(code int) bool {
	switch code {
	case http.StatusServiceUnavailable, http.StatusBadGateway,
		http.StatusGatewayTimeout, http.StatusConflict,
		http.StatusTooManyRequests:
		return true
	}
	return false
}

// maxRetryAfter caps how long the replay honors a server Retry-After
// hint, so a misconfigured quota cannot stall the benchmark.
const maxRetryAfter = 2 * time.Second

// retryBackoff picks the sleep before a router-mode retry: the server's
// Retry-After when one was sent (capped at maxRetryAfter), the
// historical 50ms backoff otherwise.
func retryBackoff(retryAfter time.Duration) time.Duration {
	if retryAfter <= 0 {
		return 50 * time.Millisecond
	}
	if retryAfter > maxRetryAfter {
		return maxRetryAfter
	}
	return retryAfter
}

// parseRetryAfter reads a delay-seconds Retry-After header (the only
// form streamkm servers emit); absent or unparseable yields zero.
func parseRetryAfter(h http.Header) time.Duration {
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// maxAttempts bounds router-mode retries per batch; direct daemon replays
// never retry (a failure there is the benchmark's signal).
func (rc replayConfig) maxAttempts() int {
	if rc.routerMode() {
		return 100
	}
	return 1
}

// postBatch posts one ingest batch — ndjson or binary columnar — to an
// ingest endpoint and accounts the daemon-acknowledged point count. On a
// refusal it also returns the server's Retry-After hint (zero if none)
// so the caller's backoff can honor it. Every request carries a fresh
// traceparent, so its server-side span is addressable in /debug/traces;
// the slowest acknowledged batches land in the slowest_ingests artifact.
func postBatch(client *http.Client, url, stream string, binaryWire bool, pts []geom.Point, st *replayStats, tenant int) (time.Duration, error) {
	var reqBody io.Reader
	contentType := "application/x-ndjson"
	if binaryWire {
		raws := make([][]float64, len(pts))
		for i, p := range pts {
			raws[i] = []float64(p)
		}
		raw, err := wire.EncodeBatch(raws, nil)
		if err != nil {
			return 0, err
		}
		reqBody = bytes.NewReader(raw)
		contentType = wire.ContentType
	} else {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, p := range pts {
			if err := enc.Encode([]float64(p)); err != nil {
				return 0, err
			}
		}
		reqBody = &buf
	}
	req, err := http.NewRequest(http.MethodPost, url, reqBody)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", contentType)
	tid := trace.NewTraceID()
	req.Header.Set(trace.Header, trace.Format(tid, trace.NewSpanID(), 1))
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Ingested int64  `json:"ingested"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, fmt.Errorf("ingest response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusTooManyRequests {
			st.throttled.Add(1)
		}
		// Partial batches exist: the daemon reports how many points of a
		// refused request it had already applied, and the accounting must
		// include them or per-tenant totals drift from the server's.
		st.ingested.Add(body.Ingested)
		st.perTenant[tenant].ingested.Add(body.Ingested)
		err := fmt.Errorf("ingest status %d: %s", resp.StatusCode, body.Error)
		if transientStatus(resp.StatusCode) {
			err = fmt.Errorf("%w: %v", errTransient, err)
		}
		return parseRetryAfter(resp.Header), err
	}
	st.ingested.Add(body.Ingested)
	st.requests.Add(1)
	st.perTenant[tenant].ingested.Add(body.Ingested)
	st.perTenant[tenant].requests.Add(1)
	st.slowIngests.add(tid.String(), stream, float64(time.Since(t0).Microseconds())/1e3)
	return 0, nil
}

// queryCenters hits a centers endpoint (optionally forcing a cache
// refresh) and records latency; it returns the reported count and center
// count for final per-tenant accounting. In router mode a transiently
// refused query (tenant mid-handoff, daemon mid-restart, quota throttle)
// is retried with the same backoff contract as ingest; the first
// attempt's latency and the total wall time including retries are
// recorded separately. Each attempt carries a fresh traceparent; the
// successful attempt's trace id feeds the slowest_queries artifact.
func queryCenters(client *http.Client, rc replayConfig, url, stream string, st *replayStats, refresh bool) (int64, int) {
	if refresh {
		url += "?refresh=1"
	}
	t0 := time.Now()
	var firstMs float64
	for attempt := 0; ; attempt++ {
		tid := trace.NewTraceID()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			st.fail(err)
			return 0, 0
		}
		req.Header.Set(trace.Header, trace.Format(tid, trace.NewSpanID(), 1))
		ta := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			st.fail(err)
			return 0, 0
		}
		if attempt == 0 {
			firstMs = float64(time.Since(ta).Microseconds()) / 1e3
		}
		if rc.routerMode() && transientStatus(resp.StatusCode) {
			retryAfter := parseRetryAfter(resp.Header)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if attempt+1 >= rc.maxAttempts() {
				return 0, 0 // tenant stuck mid-handoff; skip, not fatal
			}
			time.Sleep(retryBackoff(retryAfter))
			continue
		}
		var body struct {
			Count   int64       `json:"count"`
			Centers [][]float64 `json:"centers"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if decErr != nil || resp.StatusCode != http.StatusOK {
			st.fail(fmt.Errorf("centers status %d, err %v", resp.StatusCode, decErr))
			return 0, 0
		}
		if refresh {
			// The final forced recomputation is not a serving-path query;
			// keep it out of the cached-query latency statistics.
			return body.Count, len(body.Centers)
		}
		totalMs := float64(time.Since(t0).Microseconds()) / 1e3
		st.queries.Add(1)
		st.mu.Lock()
		st.queryMs = append(st.queryMs, firstMs)
		st.queryTot = append(st.queryTot, totalMs)
		st.mu.Unlock()
		st.slowQueries.add(tid.String(), stream, totalMs)
		return body.Count, len(body.Centers)
	}
}

// printServerStats dumps the daemon's /stats JSON, indented.
func printServerStats(client *http.Client, base string) error {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, raw, "", "  "); err != nil {
		return err
	}
	fmt.Printf("server /stats:\n%s\n", pretty.String())
	return nil
}
