package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"streamkm/internal/datagen"
	"streamkm/internal/geom"
	"streamkm/internal/metrics"
)

// replayConfig parameterizes the HTTP load-replay client mode: it streams
// a generated dataset to a running streamkmd daemon from conc concurrent
// producers while a querier hits /centers at the configured interval —
// the paper's ingest-while-querying workload, over the wire.
type replayConfig struct {
	url        string // daemon base URL, e.g. http://localhost:7070
	dataset    string // datagen dataset name
	n          int    // points to replay
	conc       int    // concurrent producers
	batch      int    // points per ingest request
	queryEvery int64  // issue a /centers query every this many points (0 = none)
	seed       int64
}

// replayStats aggregates what the producers and the querier observed.
type replayStats struct {
	ingested  atomic.Int64
	requests  atomic.Int64
	queries   atomic.Int64
	mu        sync.Mutex
	queryMs   []float64
	lastK     atomic.Int64
	firstErr  atomic.Pointer[error]
	errorsHit atomic.Int64
}

func (st *replayStats) fail(err error) {
	st.errorsHit.Add(1)
	st.firstErr.CompareAndSwap(nil, &err)
}

// runReplay generates the dataset, replays it over HTTP, and prints a
// summary table. It returns an error if the daemon was unreachable or any
// request failed.
func runReplay(rc replayConfig) error {
	ds, err := datagen.ByName(rc.dataset, rc.n, rc.seed)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 60 * time.Second}
	if err := checkHealth(client, rc.url); err != nil {
		return fmt.Errorf("daemon not healthy at %s: %v", rc.url, err)
	}

	var st replayStats
	start := time.Now()

	// Querier: polls the shared progress counter and issues a /centers
	// query each time another queryEvery points have been acknowledged.
	done := make(chan struct{})
	var qwg sync.WaitGroup
	if rc.queryEvery > 0 {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			var next = rc.queryEvery
			for {
				select {
				case <-done:
					return
				default:
				}
				if st.ingested.Load() >= next {
					next += rc.queryEvery
					queryCenters(client, rc.url, &st, false)
				} else {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
	}

	// Producers: disjoint slices of the stream, each posted in batches.
	var pwg sync.WaitGroup
	for w := 0; w < rc.conc; w++ {
		lo := w * len(ds.Points) / rc.conc
		hi := (w + 1) * len(ds.Points) / rc.conc
		pwg.Add(1)
		go func(pts []geom.Point) {
			defer pwg.Done()
			for off := 0; off < len(pts); off += rc.batch {
				end := off + rc.batch
				if end > len(pts) {
					end = len(pts)
				}
				if err := postBatch(client, rc.url, pts[off:end], &st); err != nil {
					st.fail(err)
					return
				}
			}
		}(ds.Points[lo:hi])
	}
	pwg.Wait()
	close(done)
	qwg.Wait()
	wall := time.Since(start)

	// Final authoritative query + server-side stats.
	queryCenters(client, rc.url, &st, true)
	if ep := st.firstErr.Load(); ep != nil {
		return fmt.Errorf("replay hit %d request errors; first: %v", st.errorsHit.Load(), *ep)
	}

	t := metrics.NewTable(
		fmt.Sprintf("HTTP replay of %s (%d pts, dim %d) against %s", ds.Name, ds.N(), ds.Dim, rc.url),
		"producers", "batch", "points", "ingest reqs", "wall", "points/s", "queries", "median query ms", "final k")
	st.mu.Lock()
	medQ := metrics.Median(st.queryMs)
	st.mu.Unlock()
	t.AddRow(rc.conc, rc.batch, st.ingested.Load(), st.requests.Load(),
		wall.Round(time.Millisecond).String(),
		float64(st.ingested.Load())/wall.Seconds(),
		st.queries.Load(), medQ, st.lastK.Load())
	fmt.Println(t.String())
	return printServerStats(client, rc.url)
}

// checkHealth probes /healthz.
func checkHealth(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// postBatch streams one ndjson batch to /ingest and accounts the
// daemon-acknowledged point count.
func postBatch(client *http.Client, base string, pts []geom.Point, st *replayStats) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, p := range pts {
		if err := enc.Encode([]float64(p)); err != nil {
			return err
		}
	}
	resp, err := client.Post(base+"/ingest", "application/x-ndjson", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var body struct {
		Ingested int64  `json:"ingested"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("ingest response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest status %d: %s", resp.StatusCode, body.Error)
	}
	st.ingested.Add(body.Ingested)
	st.requests.Add(1)
	return nil
}

// queryCenters hits /centers (optionally forcing a cache refresh) and
// records latency and the returned center count.
func queryCenters(client *http.Client, base string, st *replayStats, refresh bool) {
	url := base + "/centers"
	if refresh {
		url += "?refresh=1"
	}
	t0 := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		st.fail(err)
		return
	}
	defer resp.Body.Close()
	var body struct {
		Centers [][]float64 `json:"centers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || resp.StatusCode != http.StatusOK {
		st.fail(fmt.Errorf("centers status %d, err %v", resp.StatusCode, err))
		return
	}
	ms := float64(time.Since(t0).Microseconds()) / 1e3
	st.lastK.Store(int64(len(body.Centers)))
	if refresh {
		// The final forced recomputation is not a serving-path query;
		// keep it out of the cached-query latency statistics.
		return
	}
	st.queries.Add(1)
	st.mu.Lock()
	st.queryMs = append(st.queryMs, ms)
	st.mu.Unlock()
}

// printServerStats dumps the daemon's /stats JSON, indented.
func printServerStats(client *http.Client, base string) error {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, raw, "", "  "); err != nil {
		return err
	}
	fmt.Printf("server /stats:\n%s\n", pretty.String())
	return nil
}
