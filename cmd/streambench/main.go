// Command streambench regenerates the tables and figures of the paper's
// evaluation section (Zhang, Tangwongsan, Tirthapura, "Streaming k-Means
// Clustering with Fast Queries", ICDE 2017).
//
// Usage:
//
//	streambench -exp fig4                # one experiment
//	streambench -exp all                 # the full evaluation
//	streambench -exp fig5 -n 100000 -runs 9
//	streambench -exp table4 -datasets covtype,power
//	streambench -exp fig4 -paperscale    # full Table-3 cardinalities
//
// Experiments: table3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11,
// table4, ablation. Every experiment prints text tables whose rows are the
// series plotted in the corresponding paper figure; EXPERIMENTS.md records
// a reference run and compares the shapes against the paper's.
//
// # HTTP load-replay client mode
//
// With -replay, streambench becomes a load generator against a running
// streamkmd daemon instead: it replays a generated dataset over POST
// /ingest from -conc concurrent producers (batches of -batch points)
// while querying GET /centers every -q points, then prints client-side
// throughput/latency and the daemon's /stats:
//
//	streamkmd -algo CC -k 30 -shards 8 &
//	streambench -replay http://localhost:7070 -datasets covtype -n 100000 -conc 8 -batch 500
//
// -wire selects the ingest wire format: ndjson (default) or binary, the
// length-prefixed columnar application/x-streamkm-batch format — replay
// both against one daemon to measure the codec's share of ingest cost.
//
// With -tenants N the dataset is split across N independent streams
// (/streams/replay-NNN/ingest), driving the daemon's multi-tenant
// registry — point it at a daemon started with -max-streams below N to
// exercise hibernation/restore churn under load. With -json FILE the
// run's throughput/latency results are also written as machine-readable
// JSON (the BENCH_*.json trajectory format):
//
//	streamkmd -data-dir /tmp/skm -max-streams 8 &
//	streambench -replay http://localhost:7070 -n 100000 -tenants 32 -json bench.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"streamkm/internal/datagen"
	"streamkm/internal/experiments"
	"streamkm/internal/metrics"
)

var experimentFuncs = map[string]func(experiments.Config) ([]*metrics.Table, error){
	"table3":   experiments.Table3,
	"fig4":     experiments.Fig4,
	"fig5":     experiments.Fig5,
	"fig6":     experiments.Fig6,
	"fig7":     experiments.Fig7,
	"fig8":     experiments.Fig8,
	"fig9":     experiments.Fig9,
	"fig10":    experiments.Fig10,
	"fig11":    experiments.Fig11,
	"table4":   experiments.Table4,
	"ablation": experiments.Ablation,
}

// order for -exp all.
var experimentOrder = []string{
	"table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "table4", "ablation",
}

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment to run (table3, fig4..fig11, table4, ablation, all)")
		n           = flag.Int("n", 20000, "points per dataset")
		paperScale  = flag.Bool("paperscale", false, "use the full Table-3 cardinalities (slow)")
		k           = flag.Int("k", 30, "number of clusters")
		q           = flag.Int64("q", 100, "fixed query interval in points")
		runs        = flag.Int("runs", 1, "repetitions per configuration (median reported; paper uses 9)")
		seed        = flag.Int64("seed", 1, "random seed")
		datasets    = flag.String("datasets", "", "comma-separated subset of: covtype,power,intrusion,drift")
		fastQueries = flag.Bool("fastqueries", false, "downgrade query-time k-means++ to one seeding pass (fast smoke runs; distorts timing shapes)")
		replay      = flag.String("replay", "", "replay a dataset over HTTP against a streamkmd daemon at this base URL instead of running experiments")
		routers     = flag.String("routers", "", "replay through streamkm-router instead: comma-separated router base URLs; requests round-robin across them and handoff refusals (503) are retried")
		conc        = flag.Int("conc", 4, "concurrent producers in -replay mode")
		batch       = flag.Int("batch", 500, "points per ingest request in -replay mode")
		tenants     = flag.Int("tenants", 1, "drive this many independent streams (/streams/replay-NNN) in -replay mode")
		backend     = flag.String("backend", "", "create replay streams with this backend (concurrent, decayed, windowed) in -replay mode; empty = daemon default")
		halfLife    = flag.Float64("half-life", 5000, "decay half-life in points for -backend decayed")
		halfLifeS   = flag.Float64("half-life-seconds", 0, "wall-clock decay half-life for -backend decayed; overrides -half-life when set")
		windowN     = flag.Int64("window", 50000, "sliding-window length in points for -backend windowed")
		jsonOut     = flag.String("json", "", "write the -replay result as machine-readable JSON to this file")
		wireFmt     = flag.String("wire", "ndjson", "ingest wire format in -replay mode: ndjson or binary (application/x-streamkm-batch)")
	)
	flag.Parse()

	if *replay != "" || *routers != "" {
		if *conc < 1 || *batch < 1 || *tenants < 1 {
			fmt.Fprintf(os.Stderr, "streambench: -conc, -batch and -tenants must be >= 1 (got %d, %d, %d)\n", *conc, *batch, *tenants)
			os.Exit(2)
		}
		if *wireFmt != "ndjson" && *wireFmt != "binary" {
			fmt.Fprintf(os.Stderr, "streambench: -wire must be ndjson or binary, got %q\n", *wireFmt)
			os.Exit(2)
		}
		var routerURLs []string
		for _, r := range strings.Split(*routers, ",") {
			if r = strings.TrimSpace(r); r != "" {
				routerURLs = append(routerURLs, strings.TrimRight(r, "/"))
			}
		}
		ds := "covtype"
		if *datasets != "" {
			ds = strings.Split(*datasets, ",")[0]
		}
		err := runReplay(replayConfig{
			url:          strings.TrimRight(*replay, "/"),
			routers:      routerURLs,
			dataset:      ds,
			n:            *n,
			conc:         *conc,
			batch:        *batch,
			tenants:      *tenants,
			backend:      *backend,
			halfLife:     *halfLife,
			halfLifeSecs: *halfLifeS,
			windowN:      *windowN,
			queryEvery:   *q,
			seed:         *seed,
			jsonOut:      *jsonOut,
			wire:         *wireFmt,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "streambench: replay: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{
		N:           *n,
		K:           *k,
		Q:           *q,
		Runs:        *runs,
		Seed:        *seed,
		FastQueries: *fastQueries,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experimentOrder
	}
	for _, name := range names {
		f, ok := experimentFuncs[name]
		if !ok {
			valid := make([]string, 0, len(experimentFuncs))
			for e := range experimentFuncs {
				valid = append(valid, e)
			}
			sort.Strings(valid)
			fmt.Fprintf(os.Stderr, "streambench: unknown experiment %q (valid: %s, all)\n",
				name, strings.Join(valid, ", "))
			os.Exit(2)
		}
		runCfg := cfg
		if *paperScale {
			// Per-dataset paper cardinality requires one run per dataset.
			runPaperScale(name, f, runCfg)
			continue
		}
		start := time.Now()
		tables, err := f(runCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streambench: %s: %v\n", name, err)
			os.Exit(1)
		}
		printTables(tables)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// runPaperScale runs the experiment dataset-by-dataset at each dataset's
// full Table-3 cardinality.
func runPaperScale(name string, f func(experiments.Config) ([]*metrics.Table, error), cfg experiments.Config) {
	dss := cfg.Datasets
	if len(dss) == 0 {
		dss = datagen.Names()
	}
	for _, ds := range dss {
		runCfg := cfg
		runCfg.Datasets = []string{ds}
		runCfg.N = datagen.PaperSizes[ds]
		start := time.Now()
		tables, err := f(runCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streambench: %s/%s: %v\n", name, ds, err)
			os.Exit(1)
		}
		printTables(tables)
		fmt.Printf("[%s/%s completed in %v]\n\n", name, ds, time.Since(start).Round(time.Millisecond))
	}
}

func printTables(tables []*metrics.Table) {
	for _, tb := range tables {
		fmt.Println(tb.String())
	}
}
