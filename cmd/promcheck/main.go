// Command promcheck is the CI gate for the /metrics expositions: it
// scrapes one or more streamkm /metrics endpoints, fails if any of them
// does not parse as Prometheus text format 0.0.4, and — given a
// streambench JSON artifact — cross-checks the per-tenant
// streamkm_tenant_ingest_points_total series against the point counts
// the bench client had acknowledged. A disagreement means the daemon's
// tenant accounting and the wire-visible ingest responses have drifted
// apart, which is exactly the regression the gate exists to catch.
//
// Usage:
//
//	promcheck -metrics http://localhost:7070/metrics[,http://localhost:7090/metrics] [-bench streambench.json]
//
// With several -metrics targets (e.g. every daemon behind a router) the
// tenant totals are summed across targets before comparison, since each
// stream is resident on exactly one daemon.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"streamkm/internal/metrics"
)

func main() {
	var urls, bench string
	flag.StringVar(&urls, "metrics", "", "comma-separated /metrics URLs to scrape and validate (required)")
	flag.StringVar(&bench, "bench", "", "streambench JSON result to cross-check per-tenant ingest totals against (optional)")
	flag.Parse()
	if urls == "" {
		fmt.Fprintln(os.Stderr, "promcheck: -metrics is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(strings.Split(urls, ","), bench); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}

func run(urls []string, benchPath string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	// Samples summed across targets: a tenant lives on one daemon, so
	// summing its series over every scrape yields the fleet-wide total.
	total := make(map[string]float64)
	for _, u := range urls {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		samples, err := scrape(client, u)
		if err != nil {
			return err
		}
		fmt.Printf("promcheck: %s: %d samples parsed\n", u, len(samples))
		for k, v := range samples {
			total[k] += v
		}
	}
	if len(total) == 0 {
		return fmt.Errorf("no samples scraped from %v", urls)
	}
	if benchPath == "" {
		return nil
	}
	return crossCheck(total, benchPath)
}

// scrape fetches one exposition and validates it line-by-line via the
// shared parser.
func scrape(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	samples, err := metrics.ParseProm(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", url, err)
	}
	return samples, nil
}

// benchResult is the slice of the streambench JSON artifact the gate
// reads.
type benchResult struct {
	Ingested  int64 `json:"ingested"`
	PerTenant []struct {
		Stream   string `json:"stream"`
		Ingested int64  `json:"ingested"`
	} `json:"per_tenant"`
}

// crossCheck compares the scraped streamkm_tenant_ingest_points_total
// series against the bench client's acknowledged per-tenant counts.
func crossCheck(samples map[string]float64, benchPath string) error {
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		return err
	}
	var b benchResult
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("parse %s: %v", benchPath, err)
	}
	checked := 0
	for _, t := range b.PerTenant {
		if t.Stream == "(default)" {
			// Legacy single-stream replay: the daemon records those
			// requests under its own default stream id, which the bench
			// artifact does not know; nothing to match on.
			continue
		}
		key := fmt.Sprintf("streamkm_tenant_ingest_points_total{stream=%q}", t.Stream)
		got, ok := samples[key]
		if !ok {
			return fmt.Errorf("%s: no sample %s in any scraped exposition", benchPath, key)
		}
		if int64(got) != t.Ingested {
			return fmt.Errorf("%s disagrees with bench: metrics say %d points, client acknowledged %d", key, int64(got), t.Ingested)
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("%s: no per-tenant entries to cross-check", benchPath)
	}
	fmt.Printf("promcheck: %d tenant ingest totals agree with %s\n", checked, benchPath)
	return nil
}
