package main

import (
	"os"
	"path/filepath"
	"testing"

	"streamkm/internal/geom"
)

func TestLoadInputValidation(t *testing.T) {
	if _, _, _, err := loadInput("", "", 10, 1); err == nil {
		t.Fatal("accepted neither -input nor -dataset")
	}
	if _, _, _, err := loadInput("x.csv", "power", 10, 1); err == nil {
		t.Fatal("accepted both -input and -dataset")
	}
	if _, _, _, err := loadInput("", "bogus", 10, 1); err == nil {
		t.Fatal("accepted unknown dataset")
	}
	if _, _, _, err := loadInput("/nonexistent.csv", "", 10, 1); err == nil {
		t.Fatal("accepted missing file")
	}
}

func TestLoadInputDataset(t *testing.T) {
	pts, dim, name, err := loadInput("", "power", 123, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 123 || dim != 7 || name != "Power" {
		t.Fatalf("got %d points, dim %d, name %q", len(pts), dim, name)
	}
}

func TestLoadInputCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	if err := os.WriteFile(path, []byte("1,2\n3,4\nheader,bad\n5,6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, dim, name, err := loadInput(path, "", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || dim != 2 || name != path {
		t.Fatalf("got %d points, dim %d, name %q", len(pts), dim, name)
	}
}

func TestDimOf(t *testing.T) {
	if dimOf(nil) != 0 {
		t.Fatal("dimOf(nil)")
	}
	if dimOf([]geom.Point{{1, 2, 3}}) != 3 {
		t.Fatal("dimOf")
	}
}

func TestTruncate(t *testing.T) {
	p := geom.Point{1, 2, 3, 4, 5}
	if got := truncate(p, 3); len(got) != 3 {
		t.Fatalf("truncate = %v", got)
	}
	if got := truncate(p, 10); len(got) != 5 {
		t.Fatalf("truncate should keep short points: %v", got)
	}
}
