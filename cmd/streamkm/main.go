// Command streamkm clusters a point stream with any of the library's
// streaming k-means algorithms and prints the resulting centers.
//
// Input is either a CSV file of numeric rows (one point per row; rows with
// non-numeric fields are skipped) or one of the built-in synthetic dataset
// generators.
//
// Usage:
//
//	streamkm -k 10 -input points.csv
//	streamkm -k 30 -dataset covtype -n 50000 -algo OnlineCC
//	cat points.csv | streamkm -k 5 -input -
//
// The tool reports the final k centers, the end-of-stream SSQ cost, memory
// use and timing, querying every -q points along the way like a monitoring
// application would.
package main

import (
	"flag"
	"fmt"
	"os"

	"streamkm/internal/datagen"
	"streamkm/internal/experiments"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/workload"
)

func main() {
	var (
		algo    = flag.String("algo", "CC", "algorithm: Sequential, StreamKM++, CC, RCC, OnlineCC")
		k       = flag.Int("k", 10, "number of clusters")
		m       = flag.Int("m", 0, "bucket/coreset size (default 20*k)")
		q       = flag.Int64("q", 100, "query interval in points (0 = only final query)")
		alpha   = flag.Float64("alpha", 1.2, "OnlineCC switching threshold")
		input   = flag.String("input", "", "CSV file of points ('-' for stdin)")
		dataset = flag.String("dataset", "", "built-in dataset: covtype, power, intrusion, drift")
		n       = flag.Int("n", 20000, "points to generate for -dataset")
		seed    = flag.Int64("seed", 1, "random seed")
		quiet   = flag.Bool("quiet", false, "suppress the center listing (stats only)")
	)
	flag.Parse()

	pts, dim, name, err := loadInput(*input, *dataset, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamkm:", err)
		os.Exit(1)
	}
	if len(pts) == 0 {
		fmt.Fprintln(os.Stderr, "streamkm: no input points")
		os.Exit(1)
	}
	bucket := *m
	if bucket == 0 {
		bucket = 20 * *k
	}

	alg, err := experiments.NewClusterer(*algo, *k, bucket, len(pts)/bucket, *alpha, *seed, kmeans.FastOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamkm:", err)
		os.Exit(1)
	}
	res := workload.Run(alg, pts, workload.FixedInterval{Q: *q})
	cost := workload.FinalCost(res, pts)

	fmt.Printf("stream    : %s (%d points, %d dims)\n", name, len(pts), dim)
	fmt.Printf("algorithm : %s (k=%d, m=%d)\n", res.Algorithm, *k, bucket)
	fmt.Printf("queries   : %d (every %d points)\n", res.Queries, *q)
	fmt.Printf("update    : %v total, %v/point\n", res.UpdateTime.Round(1000), res.UpdatePerPoint())
	fmt.Printf("query     : %v total, %v/point amortized\n", res.QueryTime.Round(1000), res.QueryPerPoint())
	fmt.Printf("memory    : %d points (%.2f MB at 8B/attr)\n",
		res.PointsStored, float64(res.PointsStored*dim*8)/1e6)
	fmt.Printf("SSQ cost  : %.6g\n", cost)
	if !*quiet {
		fmt.Println("centers   :")
		for i, c := range res.FinalCenters {
			fmt.Printf("  [%2d] %v\n", i, truncate(c, 8))
		}
	}
}

// loadInput resolves the point source: CSV file, stdin, or generator.
func loadInput(input, dataset string, n int, seed int64) ([]geom.Point, int, string, error) {
	switch {
	case input == "" && dataset == "":
		return nil, 0, "", fmt.Errorf("provide -input or -dataset (see -h)")
	case input != "" && dataset != "":
		return nil, 0, "", fmt.Errorf("-input and -dataset are mutually exclusive")
	case input == "-":
		pts, err := datagen.LoadCSV(os.Stdin, true)
		if err != nil {
			return nil, 0, "", err
		}
		return pts, dimOf(pts), "stdin", nil
	case input != "":
		pts, err := datagen.LoadCSVFile(input, true)
		if err != nil {
			return nil, 0, "", err
		}
		return pts, dimOf(pts), input, nil
	default:
		ds, err := datagen.ByName(dataset, n, seed)
		if err != nil {
			return nil, 0, "", err
		}
		return ds.Points, ds.Dim, ds.Name, nil
	}
}

func dimOf(pts []geom.Point) int {
	if len(pts) == 0 {
		return 0
	}
	return len(pts[0])
}

// truncate limits a printed center to its first d coordinates.
func truncate(p geom.Point, d int) geom.Point {
	if len(p) <= d {
		return p
	}
	return p[:d]
}
