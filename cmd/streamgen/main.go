// Command streamgen writes one of the built-in synthetic datasets (the
// Table-3 stand-ins or the RBF drift stream) as CSV to stdout or a file —
// useful for feeding other tools, or for generating reproducible fixtures:
//
//	streamgen -dataset covtype -n 100000 > covtype.csv
//	streamgen -dataset drift -n 50000 -seed 7 -o drift.csv
//	streamgen -dataset power -n 10000 | streamkm -k 20 -input -
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"streamkm/internal/datagen"
)

func main() {
	var (
		dataset = flag.String("dataset", "covtype", "dataset: covtype, power, intrusion, drift")
		n       = flag.Int("n", 10000, "number of points")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	ds, err := datagen.ByName(*dataset, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamgen:", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamgen:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "streamgen:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, p := range ds.Points {
		for j, v := range p {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					fail(err)
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				fail(err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "streamgen: wrote %d points x %d dims (%s)\n", ds.N(), ds.Dim, ds.Name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "streamgen:", err)
	os.Exit(1)
}
