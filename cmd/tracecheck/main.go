// Command tracecheck is the CI gate for the /debug/traces rings: it
// fetches the recent-span dump from one or more streamkm daemons or
// routers after a load run and fails on span-shape invariant
// violations —
//
//   - unterminated spans (the ring's started counter outruns completed),
//   - non-positive span durations or stage durations (a stage is only
//     recorded when its code path ran, and every recording is floored at
//     a strictly positive value — zero or negative means the clock math
//     regressed),
//   - malformed trace/span ids.
//
// With -require-stage, the union of scraped spans must also contain
// every named stage at least once. CI uses this to prove the sharded
// query pipelines are live: a replay against a sharded decayed or
// windowed backend must produce query spans carrying a `shard-merge`
// stage, and its absence means queries silently stopped going through
// the lane-merge path.
//
// Given a streambench JSON artifact it also cross-checks liveness of the
// trace plumbing end to end: every slowest_queries trace id the bench
// client stamped into a traceparent header must appear in the union of
// the scraped rings. A miss means requests stopped carrying or recording
// trace context — exactly the silent regression this gate exists to
// catch. (Ingest trace ids are not cross-checked: high-volume replays
// can legitimately evict old ingest spans from the bounded ring, while
// the slowest queries are pinned in the recorders' slowest lists.)
//
// Usage:
//
//	tracecheck -traces http://localhost:7070/debug/traces[,http://localhost:7090/debug/traces] [-bench streambench.json] [-require-stage shard-merge]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"regexp"
	"strings"
	"time"
)

func main() {
	var urls, bench, stages string
	flag.StringVar(&urls, "traces", "", "comma-separated /debug/traces URLs to fetch and validate (required)")
	flag.StringVar(&bench, "bench", "", "streambench JSON result whose slowest_queries trace ids must appear in the scraped rings (optional)")
	flag.StringVar(&stages, "require-stage", "", "comma-separated stage names that must each appear in at least one scraped span (optional)")
	flag.Parse()
	if urls == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: -traces is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(strings.Split(urls, ","), bench, splitStages(stages)); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

// span mirrors trace.SpanData's JSON shape.
type span struct {
	TraceID string  `json:"trace_id"`
	SpanID  string  `json:"span_id"`
	Name    string  `json:"endpoint"`
	DurMs   float64 `json:"duration_ms"`
	Stages  []struct {
		Name string  `json:"name"`
		Ms   float64 `json:"ms"`
	} `json:"stages"`
}

// dump mirrors the /debug/traces response envelope.
type dump struct {
	Started   int64  `json:"started"`
	Completed int64  `json:"completed"`
	Spans     []span `json:"spans"`
}

var (
	traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)
	spanIDRe  = regexp.MustCompile(`^[0-9a-f]{16}$`)
)

// splitStages parses the -require-stage list, dropping empty entries.
func splitStages(s string) []string {
	var out []string
	for _, st := range strings.Split(s, ",") {
		if st = strings.TrimSpace(st); st != "" {
			out = append(out, st)
		}
	}
	return out
}

func run(urls []string, benchPath string, requiredStages []string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	seen := make(map[string]bool)       // trace ids across every scraped ring
	seenStages := make(map[string]bool) // stage names across every scraped span
	for _, u := range urls {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		d, err := fetch(client, u)
		if err != nil {
			return err
		}
		if err := validate(u, d); err != nil {
			return err
		}
		for _, s := range d.Spans {
			seen[s.TraceID] = true
			for _, st := range s.Stages {
				seenStages[st.Name] = true
			}
		}
		fmt.Printf("tracecheck: %s: %d spans ok (%d started, %d completed)\n",
			u, len(d.Spans), d.Started, d.Completed)
	}
	if len(seen) == 0 {
		return fmt.Errorf("no spans fetched from %v", urls)
	}
	for _, st := range requiredStages {
		if !seenStages[st] {
			return fmt.Errorf("required stage %q missing from every scraped span — the code path that records it did not run", st)
		}
		fmt.Printf("tracecheck: required stage %q present\n", st)
	}
	if benchPath == "" {
		return nil
	}
	return crossCheck(seen, benchPath)
}

// fetch pulls one ring dump; limit=0 asks the handler for every span it
// holds, so the cross-check sees the full recent window plus the pinned
// slowest list.
func fetch(client *http.Client, url string) (dump, error) {
	sep := "?"
	if strings.Contains(url, "?") {
		sep = "&"
	}
	resp, err := client.Get(url + sep + "limit=0")
	if err != nil {
		return dump{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dump{}, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	var d dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return dump{}, fmt.Errorf("%s: decode: %v", url, err)
	}
	return d, nil
}

// validate enforces the span-shape invariants on one ring dump.
func validate(url string, d dump) error {
	if d.Started != d.Completed {
		return fmt.Errorf("%s: %d unterminated spans (%d started, %d completed) — a handler is not ending its span",
			url, d.Started-d.Completed, d.Started, d.Completed)
	}
	for _, s := range d.Spans {
		if !traceIDRe.MatchString(s.TraceID) {
			return fmt.Errorf("%s: span %q has malformed trace id %q", url, s.Name, s.TraceID)
		}
		if !spanIDRe.MatchString(s.SpanID) {
			return fmt.Errorf("%s: trace %s has malformed span id %q", url, s.TraceID, s.SpanID)
		}
		if s.DurMs <= 0 {
			return fmt.Errorf("%s: trace %s span %q has non-positive duration %vms", url, s.TraceID, s.Name, s.DurMs)
		}
		for _, st := range s.Stages {
			if st.Ms <= 0 {
				return fmt.Errorf("%s: trace %s span %q stage %q has non-positive duration %vms",
					url, s.TraceID, s.Name, st.Name, st.Ms)
			}
		}
	}
	return nil
}

// benchResult is the slice of the streambench JSON artifact the gate
// reads.
type benchResult struct {
	SlowestQueries []struct {
		TraceID string  `json:"trace_id"`
		Stream  string  `json:"stream"`
		Ms      float64 `json:"ms"`
	} `json:"slowest_queries"`
}

// crossCheck requires every slowest-query trace id from the bench
// artifact to appear in the union of the scraped rings.
func crossCheck(seen map[string]bool, benchPath string) error {
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		return err
	}
	var b benchResult
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("parse %s: %v", benchPath, err)
	}
	if len(b.SlowestQueries) == 0 {
		return fmt.Errorf("%s: no slowest_queries entries to cross-check", benchPath)
	}
	for _, q := range b.SlowestQueries {
		if !seen[q.TraceID] {
			return fmt.Errorf("%s: slowest query trace %s (stream %s, %.1fms) missing from every scraped ring — trace context is not reaching the servers",
				benchPath, q.TraceID, q.Stream, q.Ms)
		}
	}
	fmt.Printf("tracecheck: all %d slowest-query trace ids found in the rings\n", len(b.SlowestQueries))
	return nil
}
