package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"streamkm"
	"streamkm/internal/persist"
	"streamkm/internal/registry"
	"streamkm/internal/server"
)

func TestParseMembers(t *testing.T) {
	ms, err := parseMembers("a=http://h1:7070, b=http://h2:7070")
	if err != nil || len(ms) != 2 || ms[0].Name != "a" || ms[1].URL != "http://h2:7070" {
		t.Fatalf("parse: %+v, %v", ms, err)
	}
	for _, bad := range []string{"", "nourl", "=http://x", "a=", "a=http://x,,=y"} {
		if _, err := parseMembers(bad); err == nil {
			t.Errorf("parseMembers(%q): expected error", bad)
		}
	}
	if _, err := build(options{members: "a=http://h:1,a=http://h:2"}); err == nil {
		t.Error("duplicate member names accepted")
	}
	if _, err := build(options{}); err == nil {
		t.Error("empty members accepted")
	}
}

// daemon is one in-process streamkmd-equivalent stack (registry + multi
// server), the same pairing cmd/streamkmd's build wires.
type daemon struct {
	name string
	reg  *registry.Registry
	ts   *httptest.Server
}

func startDaemon(t *testing.T, name string) *daemon {
	t.Helper()
	base := streamkm.Config{BucketSize: 20, Seed: 5}
	reg, err := registry.New(registry.Config{
		DataDir: t.TempDir(),
		Default: registry.StreamConfig{Backend: "concurrent", Algo: "CC", K: 3},
		New: func(_ string, sc registry.StreamConfig) (registry.Backend, error) {
			return streamkm.Open(streamkm.SpecFromStreamConfig(sc, 2), base)
		},
		Restore: func(_ string, want registry.StreamConfig, r io.Reader) (registry.Backend, registry.StreamConfig, error) {
			b, err := streamkm.Restore(streamkm.SpecFromStreamConfig(want, 0), r, streamkm.Config{Seed: base.Seed})
			if err != nil {
				return nil, registry.StreamConfig{}, err
			}
			return b, b.Spec().StreamConfig(), nil
		},
		Peek: func(r io.Reader) (registry.StreamConfig, int64, error) {
			m, err := persist.PeekBackend(r)
			if err != nil {
				return registry.StreamConfig{}, 0, err
			}
			return registry.StreamConfig{Backend: m.Type, Algo: m.Algo, K: m.K, Dim: m.Dim}, m.Count, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewMulti(reg, server.MultiConfig{MaxBatch: 64}).Handler())
	t.Cleanup(ts.Close)
	return &daemon{name: name, reg: reg, ts: ts}
}

// TestRouterDaemonLevel drives the built router (flag parsing and all)
// against live daemon stacks: multi-tenant replay through the router,
// live drain of one daemon over the admin API, and a graceful kill of
// the drained daemon — totals and per-tenant service must survive.
func TestRouterDaemonLevel(t *testing.T) {
	d1 := startDaemon(t, "d1")
	d2 := startDaemon(t, "d2")
	d3 := startDaemon(t, "d3")

	p, err := build(options{
		members: fmt.Sprintf("d1=%s,d2=%s,d3=%s", d1.ts.URL, d2.ts.URL, d3.ts.URL),
	})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(p.Handler())
	defer router.Close()
	client := router.Client()

	const tenants, per = 8, 150
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("dl-%d", i)
		var body strings.Builder
		for j := 0; j < per; j++ {
			fmt.Fprintf(&body, "[%d,%d]\n", j%7, (i+j)%5)
		}
		resp, err := client.Post(router.URL+"/streams/"+id+"/ingest",
			"application/x-ndjson", strings.NewReader(body.String()))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", id, resp.StatusCode)
		}
	}

	countAll := func() (map[string]int64, int) {
		t.Helper()
		resp, err := client.Get(router.URL + "/streams")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Streams []struct {
				ID     string `json:"id"`
				Count  int64  `json:"count"`
				Daemon string `json:"daemon"`
			} `json:"streams"`
			Total int `json:"total"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		counts := map[string]int64{}
		for _, s := range body.Streams {
			counts[s.ID] = s.Count
		}
		return counts, body.Total
	}
	counts, total := countAll()
	if total != tenants {
		t.Fatalf("merged total %d, want %d", total, tenants)
	}
	for id, n := range counts {
		if n != per {
			t.Fatalf("tenant %s count %d, want %d", id, n, per)
		}
	}

	// Drain d3 over the admin API (live handoff), then kill it.
	req, _ := http.NewRequest(http.MethodDelete, router.URL+"/cluster/members/d3", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Moved   []string          `json:"moved"`
		Pending map[string]string `json:"pending"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Pending) != 0 {
		t.Fatalf("live drain left pending handoffs: %+v", rep.Pending)
	}
	if got := len(d3.reg.List()); got != 0 {
		t.Fatalf("drained daemon still holds %d tenants", got)
	}
	d3.ts.Close() // the daemon is now disposable

	counts, total = countAll()
	if total != tenants {
		t.Fatalf("merged total after drain %d, want %d", total, tenants)
	}
	for id, n := range counts {
		if n != per {
			t.Fatalf("tenant %s count after drain %d, want %d", id, n, per)
		}
	}
	// Every tenant still answers queries through the router.
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("dl-%d", i)
		resp, err := client.Get(router.URL + "/streams/" + id + "/centers")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("centers %s after drain: status %d", id, resp.StatusCode)
		}
	}
	// A rebalance after the fact is a no-op, not an error.
	if rep, err := p.Rebalance(context.Background()); err != nil || len(rep.Moved) != 0 {
		t.Fatalf("idle rebalance: %+v, %v", rep, err)
	}
}
