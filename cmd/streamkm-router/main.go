// Command streamkm-router fronts a fleet of streamkmd daemons with a
// consistent-hash ring: per-stream requests proxy to the owning daemon,
// fleet-wide views merge, and membership changes migrate tenants over
// the daemons' snapshot endpoints (see internal/ring).
//
// Observability mirrors the daemon: structured JSON logs (log/slog) on
// stderr; every proxied request runs in a span whose traceparent is
// forwarded upstream (the router span becomes the daemon span's
// parent, so one trace id covers both hops); GET /debug/traces serves
// the recent/slowest span ring; -slow-request D logs requests at or
// over D with their dominant stage (typically proxy-hop); -debug-addr
// serves net/http/pprof on its own listener, never on the proxy mux.
//
// High availability is opt-in by three flags. -replicate-interval ships
// every placed tenant's snapshot to a standby member that often (each
// ship a "replicate" span with a replicate-ship stage), bounding
// failover loss to one interval of traffic. -health-interval probes
// every member's /healthz; -health-fails consecutive failures mark a
// member down and automatically promote its tenants onto their
// standbys. -state makes the routing table durable: placement,
// in-flight handoffs, standby assignments and promotions persist to an
// atomically-rewritten JSON file, so a restarted router (or a second
// one started from the same file) completes interrupted migrations
// instead of leaving tenants frozen. -fan-timeout bounds each member's
// leg of the merged /streams and /stats views so a wedged daemon
// yields partial results, not a freeze.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamkm/internal/ring"
)

// options carries the flag values; split from main for testability.
type options struct {
	addr        string
	members     string
	replicas    int
	timeout     time.Duration
	rebalance   time.Duration
	bootSync    bool
	bootRetries int
	slowRequest time.Duration
	debugAddr   string

	statePath         string
	healthInterval    time.Duration
	healthTimeout     time.Duration
	healthFails       int
	replicateInterval time.Duration
	fanTimeout        time.Duration
}

// parseMembers turns "a=http://h1:7070,b=http://h2:7070" into members.
func parseMembers(s string) ([]ring.Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("at least one -members entry (name=url) is required")
	}
	var out []ring.Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -members entry %q (want name=url)", part)
		}
		out = append(out, ring.Member{Name: name, URL: url})
	}
	if len(out) == 0 {
		return nil, errors.New("at least one -members entry (name=url) is required")
	}
	return out, nil
}

// build wires options into a serving-ready proxy.
func build(o options) (*ring.Proxy, error) {
	members, err := parseMembers(o.members)
	if err != nil {
		return nil, err
	}
	if o.timeout <= 0 {
		o.timeout = 30 * time.Second
	}
	return ring.NewProxy(ring.ProxyConfig{
		Members:       members,
		Replicas:      o.replicas,
		Client:        &http.Client{Timeout: o.timeout},
		SlowRequest:   o.slowRequest,
		StatePath:     o.statePath,
		FailThreshold: o.healthFails,
		ProbeTimeout:  o.healthTimeout,
		FanTimeout:    o.fanTimeout,
	})
}

// debugMux builds the pprof-only mux served on -debug-addr, kept off the
// proxy mux so profiling is never reachable through the data port.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":7080", "listen address")
	flag.StringVar(&o.members, "members", "", "comma-separated fleet members, name=url each (e.g. a=http://10.0.0.1:7070,b=http://10.0.0.2:7070); names are the stable ring identities")
	flag.IntVar(&o.replicas, "replicas", 0, "virtual nodes per member (0 = 128)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request upstream timeout")
	flag.DurationVar(&o.rebalance, "rebalance-interval", 0, "periodically retry pending handoffs and clean stale copies (0 = only on membership changes and POST /cluster/rebalance)")
	flag.BoolVar(&o.bootSync, "sync-on-boot", true, "reconcile tenant placement with the fleet before serving (retries until the daemons answer; refuses to start if they never do)")
	flag.IntVar(&o.bootRetries, "sync-retries", 30, "boot reconciliation attempts, 2s apart, before refusing to start")
	flag.DurationVar(&o.slowRequest, "slow-request", 0, "log one structured record per proxied request slower than this, with its dominant stage (0 = disabled)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve net/http/pprof on this address (never on the proxy mux; empty = disabled)")
	flag.StringVar(&o.statePath, "state", "", "persist the routing table (placement, handoffs, standbys) atomically to this file and load it on boot; a restarted router or a second replica pointed here completes interrupted migrations (empty = in-memory only)")
	flag.DurationVar(&o.healthInterval, "health-interval", 0, "probe every member's /healthz this often; members failing -health-fails consecutive probes are marked down and their tenants fail over to the standbys (0 = disabled)")
	flag.DurationVar(&o.healthTimeout, "health-timeout", 2*time.Second, "per-member health probe timeout")
	flag.IntVar(&o.healthFails, "health-fails", 0, "consecutive probe failures before a member is marked down (0 = 3)")
	flag.DurationVar(&o.replicateInterval, "replicate-interval", 0, "ship every placed tenant's snapshot to its standby this often; bounds failover loss to one interval of traffic (0 = disabled)")
	flag.DurationVar(&o.fanTimeout, "fan-timeout", 10*time.Second, "per-member deadline for fleet-wide fan-outs (/streams, /stats merges), so one wedged daemon yields partial results instead of a freeze")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	p, err := build(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamkm-router: %v\n", err)
		os.Exit(2)
	}
	st := p.Ring().State()
	logger.Info("ring ready",
		"version", st.Version, "members", len(st.Members),
		"replicas", p.Ring().Replicas(), "addr", o.addr)

	if o.debugAddr != "" {
		go func() {
			logger.Info("serving pprof", "debug_addr", o.debugAddr)
			if err := http.ListenAndServe(o.debugAddr, debugMux()); err != nil {
				logger.Error("debug listener failed", "debug_addr", o.debugAddr, "error", err)
			}
		}()
	}

	if o.bootSync {
		// Placement is learned, not assumed: reconcile with what the
		// daemons actually hold BEFORE serving, so a router restart (or a
		// boot against a populated fleet) can never route a write to a
		// ring owner that would lazily re-create a tenant whose state
		// sits on a non-owner from before — a fork the next rebalance
		// would resolve by deleting acknowledged points. Serving is gated
		// on this; if the fleet never answers, refusing to start is the
		// safe failure (disable with -sync-on-boot=false to accept the
		// risk).
		synced := false
		for i := 0; i < o.bootRetries; i++ {
			rep, err := p.Rebalance(context.Background())
			if err == nil && len(rep.ListFailed) == 0 {
				logger.Info("boot sync complete",
					"tenants", rep.Tenants, "moved", len(rep.Moved), "pending", len(rep.Pending))
				synced = true
				break
			}
			if err != nil {
				logger.Warn("boot sync attempt failed",
					"attempt", i+1, "attempts", o.bootRetries, "error", err)
			} else {
				logger.Warn("boot sync attempt failed: daemons unreachable",
					"attempt", i+1, "attempts", o.bootRetries, "unreachable", rep.ListFailed)
			}
			time.Sleep(2 * time.Second)
		}
		if !synced {
			fmt.Fprintf(os.Stderr, "streamkm-router: fleet unreachable after %d boot-sync attempts; refusing to serve with unknown tenant placement (use -sync-on-boot=false to override)\n", o.bootRetries)
			os.Exit(2)
		}
	}

	loopCtx, stopLoops := context.WithCancel(context.Background())
	defer stopLoops()
	p.StartHealthLoop(loopCtx, o.healthInterval)
	p.StartReplicationLoop(loopCtx, o.replicateInterval)

	done := make(chan struct{})
	if o.rebalance > 0 {
		go func() {
			ticker := time.NewTicker(o.rebalance)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if rep, err := p.Rebalance(context.Background()); err == nil &&
						(len(rep.Moved) > 0 || len(rep.Pending) > 0) {
						logger.Info("rebalance tick", "moved", len(rep.Moved), "pending", len(rep.Pending))
					}
				case <-done:
					return
				}
			}
		}()
	}

	hs := &http.Server{Addr: o.addr, Handler: p.Handler()}
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("listen failed", "addr", o.addr, "error", err)
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	close(done)
	stopLoops()
	logger.Info("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Error("shutdown failed", "error", err)
	}
}
