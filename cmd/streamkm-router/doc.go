// Command streamkm-router is the horizontal-scaling front for a fleet of
// streamkmd daemons: a consistent-hash router that maps every stream id
// onto one daemon, so the fleet serves the union of all tenants while
// each tenant's coreset state — small by the paper's construction —
// lives whole on exactly one daemon.
//
//	                   ┌──────────────┐
//	clients ─────────► │ streamkm-    │    tenant id ──hash──► daemon
//	/streams/{id}/...  │   router     │
//	                   └──┬────┬────┬─┘
//	              ┌───────┘    │    └────────┐
//	              ▼            ▼             ▼
//	        ┌──────────┐ ┌──────────┐ ┌──────────┐
//	        │streamkmd │ │streamkmd │ │streamkmd │   each with its own
//	        │  "a"     │ │  "b"     │ │  "c"     │   -data-dir
//	        └──────────┘ └──────────┘ └──────────┘
//
// Usage:
//
//	streamkm-router -addr :7080 \
//	    -members a=http://10.0.0.1:7070,b=http://10.0.0.2:7070,c=http://10.0.0.3:7070
//
// Per-stream requests (/streams/{id}/..., PUT/DELETE /streams/{id}) are
// forwarded to the owning daemon; the response carries an
// X-Streamkm-Owner header naming it. GET /streams and GET /stats fan out
// to every daemon and return merged fleet-wide views. GET /ring serves
// the serializable ring state (version, replicas, members), which is a
// pure function of the member-name set: any router given the same
// members maps every tenant identically, so routers can be replicated
// without coordination.
//
// # Membership and rebalancing
//
//	curl -X POST localhost:7080/cluster/members -d '{"name":"d","url":"http://10.0.0.4:7070"}'
//	curl -X DELETE localhost:7080/cluster/members/c        # drain c out
//	curl -X PUT  localhost:7080/cluster/members -d '{"name":"c","url":"http://10.0.0.9:7070"}'
//	curl -X POST localhost:7080/cluster/rebalance          # retry pending handoffs
//
// Membership changes rebalance synchronously: for every tenant whose
// ring owner changed, the router drives the daemons' handoff protocol —
// POST /streams/{id}/detach on the source (which checkpoints the tenant
// and freezes it), GET its /snapshot, PUT the snapshot onto the new
// owner, DELETE the source copy. The ring hashes stable member *names*,
// not addresses, so consistent hashing guarantees only the joining or
// leaving member's tenants move (~tenants/members of them), and a daemon
// restarting at a new address moves nothing.
//
// # The handoff write-refusal window
//
// While one tenant's snapshot is in flight, writes to that tenant — and
// only that tenant — are refused with 503 + Retry-After: 1; every other
// tenant is untouched. The window is one small-snapshot copy long.
// Clients retry on 503 exactly as they would for any overloaded service;
// nothing refused is ever half-applied. If a migration fails mid-way
// (e.g. the source daemon dies), the tenant stays frozen rather than
// being lazily re-created empty on the new owner — correctness over
// availability: a refused write is retriable, a forked history is not.
// Restart the daemon (its -data-dir holds every acknowledged point),
// report its address with PUT /cluster/members, and POST
// /cluster/rebalance to complete the move.
//
// # Caveat: legacy default streams
//
// Every streamkmd serves a legacy default stream (-default-stream,
// "default" by default) for the pre-multi-tenant root endpoints. Behind
// a router those per-daemon defaults collide into one merged id, and a
// rebalance will collapse them onto the ring owner, keeping the copy
// with the highest count. Router-fronted clients should use the
// /streams/{id} routes; if the legacy root endpoints are exercised
// directly against daemons, give each daemon a distinct -default-stream
// name.
package main
