// Multi-tenant serving: thousands of independent streams in one daemon.
//
// The paper's smallness results (coreset state polylogarithmic in the
// stream, queries cheap enough to answer inline) mean one serving
// process can host many tenants, not one. This example builds the
// daemon's stack in-process — a stream registry capped at 4 resident
// backends behind the multi-tenant HTTP server — and walks 12 tenants
// through the full lifecycle: lazy creation on first ingest, LRU
// hibernation of cold tenants to per-stream snapshot files, transparent
// restore on the next query, and a restart that comes back with every
// tenant's count intact from the data directory alone.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"streamkm"
	"streamkm/internal/persist"
	"streamkm/internal/registry"
	"streamkm/internal/server"
)

// newRegistry wires a registry to streamkm.Concurrent backends — the
// same pairing cmd/streamkmd uses.
func newRegistry(dir string, maxResident int) *registry.Registry {
	reg, err := registry.New(registry.Config{
		DataDir:     dir,
		MaxResident: maxResident,
		Default:     registry.StreamConfig{Algo: "CC", K: 3},
		New: func(_ string, sc registry.StreamConfig) (registry.Backend, error) {
			return streamkm.NewConcurrent(streamkm.Algo(sc.Algo), 2, streamkm.Config{K: sc.K, Seed: 1})
		},
		Restore: func(_ string, r io.Reader) (registry.Backend, registry.StreamConfig, error) {
			c, err := streamkm.NewConcurrentFromSnapshot(r, streamkm.Config{Seed: 1})
			if err != nil {
				return nil, registry.StreamConfig{}, err
			}
			return c, registry.StreamConfig{Algo: string(c.Algo()), K: c.K(), Dim: c.Dim()}, nil
		},
		Peek: func(r io.Reader) (registry.StreamConfig, int64, error) {
			algo, k, dim, count, err := persist.PeekSharded(r)
			return registry.StreamConfig{Algo: algo, K: k, Dim: dim}, count, err
		},
	})
	if err != nil {
		panic(err)
	}
	return reg
}

func main() {
	const tenants = 12
	dir, err := os.MkdirTemp("", "streamkm-multitenant")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	reg := newRegistry(dir, 4)
	ts := httptest.NewServer(server.NewMulti(reg, server.MultiConfig{}).Handler())

	// 12 tenants, each with its own 3-cluster mixture, ingested over the
	// multi-tenant API. Streams are created lazily on first ingest.
	rng := rand.New(rand.NewSource(7))
	for t := 0; t < tenants; t++ {
		var b strings.Builder
		base := float64(100 * t)
		for i := 0; i < 900; i++ {
			cx := base + float64(30*(i%3))
			fmt.Fprintf(&b, "[%.3f,%.3f]\n", cx+rng.NormFloat64(), rng.NormFloat64())
		}
		resp, err := http.Post(fmt.Sprintf("%s/streams/tenant-%02d/ingest", ts.URL, t),
			"application/x-ndjson", strings.NewReader(b.String()))
		if err != nil {
			panic(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	st := reg.Stats()
	fmt.Printf("after ingest: %d streams, %d resident, %d hibernated (%d evictions)\n",
		st.Streams, st.Resident, st.Hibernated, st.Registry.Evictions)

	// Query a long-cold tenant: it restores transparently from its
	// snapshot file, with every point still counted.
	var centers struct {
		Count   int64       `json:"count"`
		Centers [][]float64 `json:"centers"`
	}
	resp, err := http.Get(ts.URL + "/streams/tenant-00/centers")
	if err != nil {
		panic(err)
	}
	json.NewDecoder(resp.Body).Decode(&centers)
	resp.Body.Close()
	fmt.Printf("tenant-00 after lazy restore: count=%d, %d centers, %d total restores\n",
		centers.Count, len(centers.Centers), reg.Stats().Registry.Restores)

	// "Kill" the process: flush resident streams and drop everything,
	// then boot a brand-new registry from the data directory.
	if err := reg.CheckpointAll(); err != nil {
		panic(err)
	}
	ts.Close()
	reg2 := newRegistry(dir, 4)
	ts2 := httptest.NewServer(server.NewMulti(reg2, server.MultiConfig{}).Handler())
	defer ts2.Close()

	st2 := reg2.Stats()
	fmt.Printf("after restart: %d streams registered, %d resident (all cold)\n", st2.Streams, st2.Resident)
	ok := true
	for t := 0; t < tenants; t++ {
		resp, err := http.Get(fmt.Sprintf("%s/streams/tenant-%02d/centers", ts2.URL, t))
		if err != nil {
			panic(err)
		}
		json.NewDecoder(resp.Body).Decode(&centers)
		resp.Body.Close()
		if centers.Count != 900 {
			ok = false
			fmt.Printf("tenant-%02d lost points: %d != 900\n", t, centers.Count)
		}
	}
	if ok {
		fmt.Printf("all %d tenants intact after restart (900 points each)\n", tenants)
	}
}
