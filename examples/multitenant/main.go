// Multi-tenant serving: thousands of independent streams in one daemon.
//
// The paper's smallness results (coreset state polylogarithmic in the
// stream, queries cheap enough to answer inline) mean one serving
// process can host many tenants, not one. This example builds the
// daemon's stack in-process — a stream registry capped at 4 resident
// backends behind the multi-tenant HTTP server — and walks 12 tenants
// through the full lifecycle: lazy creation on first ingest, LRU
// hibernation of cold tenants to per-stream snapshot files, transparent
// restore on the next query, and a restart that comes back with every
// tenant's count intact from the data directory alone.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"streamkm"
	"streamkm/internal/persist"
	"streamkm/internal/registry"
	"streamkm/internal/server"
)

// newRegistry wires a registry to the spec-driven backend factory — the
// same pairing cmd/streamkmd uses. Any tenant can select a concurrent,
// decayed or windowed backend in its PUT body; everything below the
// factory (hibernation, restore, restart) is variant-agnostic.
func newRegistry(dir string, maxResident int) *registry.Registry {
	reg, err := registry.New(registry.Config{
		DataDir:     dir,
		MaxResident: maxResident,
		Default:     registry.StreamConfig{Backend: "concurrent", Algo: "CC", K: 3},
		New: func(_ string, sc registry.StreamConfig) (registry.Backend, error) {
			return streamkm.Open(streamkm.SpecFromStreamConfig(sc, 2), streamkm.Config{Seed: 1})
		},
		Restore: func(_ string, want registry.StreamConfig, r io.Reader) (registry.Backend, registry.StreamConfig, error) {
			b, err := streamkm.Restore(streamkm.SpecFromStreamConfig(want, 0), r, streamkm.Config{Seed: 1})
			if err != nil {
				return nil, registry.StreamConfig{}, err
			}
			return b, b.Spec().StreamConfig(), nil
		},
		Peek: func(r io.Reader) (registry.StreamConfig, int64, error) {
			m, err := persist.PeekBackend(r)
			if err != nil {
				return registry.StreamConfig{}, 0, err
			}
			return registry.StreamConfig{
				Backend: m.Type, Algo: m.Algo, K: m.K, Dim: m.Dim,
				HalfLife: m.HalfLife, WindowN: m.WindowN,
				PointsPerSec: m.PointsPerSec, BytesPerSec: m.BytesPerSec,
				MaxResidentBytes: m.MaxResidentBytes,
			}, m.Count, nil
		},
	})
	if err != nil {
		panic(err)
	}
	return reg
}

func main() {
	const tenants = 12
	dir, err := os.MkdirTemp("", "streamkm-multitenant")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	reg := newRegistry(dir, 4)
	ts := httptest.NewServer(server.NewMulti(reg, server.MultiConfig{}).Handler())

	// Two tenants opt out of the infinite-stream default up front: one
	// fades history with a 300-point half-life, one clusters only its
	// last 600 points. Every lifecycle step below (hibernate, restore,
	// restart) treats them exactly like the concurrent tenants.
	for id, body := range map[string]string{
		"tenant-00": `{"backend":"decayed","half_life":300}`,
		"tenant-01": `{"backend":"windowed","window_n":600}`,
	} {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/streams/"+id, strings.NewReader(body))
		if err != nil {
			panic(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			panic(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			panic(fmt.Sprintf("create %s: status %d", id, resp.StatusCode))
		}
	}

	// 12 tenants, each with its own 3-cluster mixture, ingested over the
	// multi-tenant API. The remaining streams are created lazily on first
	// ingest with the registry default (concurrent/CC).
	rng := rand.New(rand.NewSource(7))
	for t := 0; t < tenants; t++ {
		var b strings.Builder
		base := float64(100 * t)
		for i := 0; i < 900; i++ {
			cx := base + float64(30*(i%3))
			fmt.Fprintf(&b, "[%.3f,%.3f]\n", cx+rng.NormFloat64(), rng.NormFloat64())
		}
		resp, err := http.Post(fmt.Sprintf("%s/streams/tenant-%02d/ingest", ts.URL, t),
			"application/x-ndjson", strings.NewReader(b.String()))
		if err != nil {
			panic(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	st := reg.Stats()
	fmt.Printf("after ingest: %d streams, %d resident, %d hibernated (%d evictions)\n",
		st.Streams, st.Resident, st.Hibernated, st.Registry.Evictions)

	// Query a long-cold tenant: it restores transparently from its
	// snapshot file, with every point still counted.
	var centers struct {
		Count   int64       `json:"count"`
		Centers [][]float64 `json:"centers"`
	}
	resp, err := http.Get(ts.URL + "/streams/tenant-00/centers")
	if err != nil {
		panic(err)
	}
	json.NewDecoder(resp.Body).Decode(&centers)
	resp.Body.Close()
	fmt.Printf("tenant-00 (decayed) after lazy restore: count=%d, %d centers, %d total restores\n",
		centers.Count, len(centers.Centers), reg.Stats().Registry.Restores)

	// "Kill" the process: flush resident streams and drop everything,
	// then boot a brand-new registry from the data directory.
	if err := reg.CheckpointAll(); err != nil {
		panic(err)
	}
	ts.Close()
	reg2 := newRegistry(dir, 4)
	ts2 := httptest.NewServer(server.NewMulti(reg2, server.MultiConfig{}).Handler())
	defer ts2.Close()

	st2 := reg2.Stats()
	fmt.Printf("after restart: %d streams registered, %d resident (all cold)\n", st2.Streams, st2.Resident)
	ok := true
	for t := 0; t < tenants; t++ {
		resp, err := http.Get(fmt.Sprintf("%s/streams/tenant-%02d/centers", ts2.URL, t))
		if err != nil {
			panic(err)
		}
		json.NewDecoder(resp.Body).Decode(&centers)
		resp.Body.Close()
		if centers.Count != 900 {
			ok = false
			fmt.Printf("tenant-%02d lost points: %d != 900\n", t, centers.Count)
		}
	}
	if ok {
		fmt.Printf("all %d tenants intact after restart (900 points each)\n", tenants)
	}
}
