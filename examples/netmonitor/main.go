// Network monitoring: the paper's motivating scenario for fast queries.
//
// A monitoring dashboard clusters live connection feature vectors and
// refreshes its view every few hundred events — queries are nearly as
// frequent as updates. This example streams an Intrusion-shaped workload
// (a few dominant "normal traffic" clusters plus rare, far-away attack
// bursts) through OnlineCC and through MacQueen's Sequential k-means, then
// compares what each one's centers say about the rare attack traffic.
//
// The outcome mirrors Figure 4(c) of the paper: Sequential k-means never
// discovers the attack clusters (its centers stay glued to bulk traffic),
// while OnlineCC — at almost the same speed — places centers on them.
//
// Run with:
//
//	go run ./examples/netmonitor
package main

import (
	"fmt"
	"time"

	"streamkm"
	"streamkm/internal/datagen"
)

func main() {
	const (
		k = 12
		n = 40000
		q = 200 // dashboard refresh: query every 200 events
	)
	ds := datagen.Intrusion(n, 7)
	fmt.Printf("streaming %d synthetic connection records (%d features)\n\n", ds.N(), ds.Dim)

	online := streamkm.MustNew(streamkm.AlgoOnlineCC, streamkm.Config{K: k, Seed: 1})
	seq := streamkm.MustNew(streamkm.AlgoSequential, streamkm.Config{K: k, Seed: 1})

	points := make([]streamkm.Point, ds.N())
	for i, p := range ds.Points {
		points[i] = streamkm.Point(p)
	}

	run := func(c streamkm.Clusterer) (time.Duration, []streamkm.Point) {
		start := time.Now()
		var centers []streamkm.Point
		for i, p := range points {
			c.Add(p)
			if (i+1)%q == 0 {
				centers = c.Centers() // dashboard refresh
			}
		}
		return time.Since(start), centers
	}

	for _, c := range []streamkm.Clusterer{seq, online} {
		elapsed, centers := run(c)
		cost := streamkm.Cost(points, centers)
		fmt.Printf("%-10s  total %8v  (%d queries)  SSQ %.4g\n",
			c.Name(), elapsed.Round(time.Millisecond), n/q, cost)
	}

	fmt.Println("\nSequential k-means looks fast — but check the attack clusters:")
	// Attack traffic lives far from the origin in this generator. Count
	// centers that sit in attack territory for each algorithm.
	for _, c := range []streamkm.Clusterer{seq, online} {
		centers := c.Centers()
		attacks := 0
		for _, ctr := range centers {
			var norm float64
			for _, v := range ctr {
				norm += v * v
			}
			if norm > 1e6 { // bulk clusters are within ~100 of the origin
				attacks++
			}
		}
		fmt.Printf("  %-10s  %2d of %d centers cover attack traffic\n", c.Name(), attacks, k)
	}
	fmt.Println("\nOnlineCC keeps the provable O(log k) quality of coreset methods")
	fmt.Println("while answering dashboard queries in O(1) most of the time.")
}
