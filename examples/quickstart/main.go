// Quickstart: cluster a stream of points with the cached coreset tree (CC)
// and query centers while the stream is still running.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"streamkm"
)

func main() {
	// Three Gaussian blobs emitted in a random interleaving — pretend this
	// is a feed of feature vectors arriving one at a time.
	rng := rand.New(rand.NewSource(42))
	blobs := [][2]float64{{0, 0}, {25, 0}, {0, 25}}
	stream := func() streamkm.Point {
		b := blobs[rng.Intn(len(blobs))]
		return streamkm.Point{b[0] + rng.NormFloat64(), b[1] + rng.NormFloat64()}
	}

	// A CC clusterer with k=3. Every other knob defaults to the paper's
	// values (bucket size 20k, merge degree 2, one k-means++ run per query).
	c, err := streamkm.New(streamkm.AlgoCC, streamkm.Config{K: 3, Seed: 1})
	if err != nil {
		panic(err)
	}

	// Feed 10,000 points, asking for centers every 2,500 — queries are
	// cheap, so a real application can ask as often as it likes.
	for i := 1; i <= 10000; i++ {
		c.Add(stream())
		if i%2500 == 0 {
			centers := c.Centers()
			fmt.Printf("after %5d points, %d centers:\n", i, len(centers))
			for _, ctr := range centers {
				fmt.Printf("   (%6.2f, %6.2f)\n", ctr[0], ctr[1])
			}
		}
	}

	// How much does the summary cost us? (Points stored, not raw stream.)
	fmt.Printf("memory: %d stored points for a 10,000-point stream\n", c.PointsStored())
}
