// Sensor drift: clustering an evolving stream.
//
// Sensor fleets drift — hotspots move, regimes change. This example feeds
// an RBF drifting stream (the paper's own Drift recipe: moving Gaussian
// sources) into OnlineCC and watches two things:
//
//  1. the cluster centers follow the moving sources, and
//  2. OnlineCC's fallback counter shows how the algorithm notices drift:
//     the sequential fast path degrades, the cost bound trips, and the
//     query falls back to the provably-accurate CC path to re-center.
//
// Run with:
//
//	go run ./examples/sensordrift
package main

import (
	"fmt"
	"math"
	"math/rand"

	"streamkm"
	"streamkm/internal/datagen"
	"streamkm/internal/geom"
)

func main() {
	const (
		k         = 8
		clusters  = 8
		steps     = 60
		perStep   = 400 // points per drift step
		dims      = 12
		driftRate = 4.0
	)
	rng := rand.New(rand.NewSource(3))
	gen := datagen.NewRBFDrift(rng, clusters, dims, 500, 4, 8, driftRate, perStep/clusters)

	c := streamkm.MustNew(streamkm.AlgoOnlineCC, streamkm.Config{
		K:     k,
		Alpha: 1.2, // tight threshold: notice drift quickly
		Seed:  1,
	})

	fmt.Println("step   drift(true centers)   tracking error   ")
	fmt.Println("-----  --------------------  -----------------")
	var prevTrue []geom.Point
	for step := 1; step <= steps; step++ {
		batch := gen.Take(perStep)
		for _, p := range batch {
			c.Add(streamkm.Point(p))
		}
		trueCenters := gen.Centers()

		// How far did the ground-truth sources move this step?
		moved := 0.0
		if prevTrue != nil {
			for i := range trueCenters {
				moved += geom.Dist(trueCenters[i], prevTrue[i])
			}
		}
		prevTrue = trueCenters

		if step%10 == 0 {
			centers := c.Centers()
			// Tracking error: RMS distance from each true source to the
			// nearest learned center.
			var sum float64
			for _, tc := range trueCenters {
				best := math.Inf(1)
				for _, lc := range centers {
					d := 0.0
					for j := range tc {
						diff := tc[j] - lc[j]
						d += diff * diff
					}
					if d < best {
						best = d
					}
				}
				sum += best
			}
			rms := math.Sqrt(sum / float64(len(trueCenters)))
			fmt.Printf("%5d  %17.1f     %14.1f\n", step, moved, rms)
		}
	}
	fmt.Printf("\ntotal stream: %d points; memory: %d stored points\n",
		steps*perStep, c.PointsStored())
	fmt.Println("tracking error stays bounded while the sources keep moving —")
	fmt.Println("the cost-triggered fallback re-centers the clustering as needed.")
}
