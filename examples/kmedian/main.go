// Robust centers with streaming k-median.
//
// The k-means objective squares distances, so a small fraction of extreme
// outliers (sensor glitches, corrupted records) can drag centers far from
// the real mass. The k-median objective uses plain distances and shrugs
// them off. This example streams clustered data contaminated with rare wild
// outliers (0.05%) through both objectives — same cached-coreset machinery, the
// extension proposed in the paper's conclusion — and compares where the
// centers land.
//
// Run with:
//
//	go run ./examples/kmedian
package main

import (
	"fmt"
	"math"
	"math/rand"

	"streamkm"
)

func main() {
	const (
		k = 3
		n = 40000
	)
	blobs := [][2]float64{{0, 0}, {50, 0}, {0, 50}}

	means := streamkm.MustNew(streamkm.AlgoCC,
		streamkm.Config{K: k, Seed: 1, QueryRuns: 3, QueryLloydIters: 10})
	medians, err := streamkm.NewKMedian(streamkm.AlgoCC,
		streamkm.Config{K: k, Seed: 1, QueryRuns: 3, QueryLloydIters: 10})
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		var p streamkm.Point
		if rng.Float64() < 0.0005 {
			// Glitch: a rare wild reading far outside the data range. Rare
			// enough that its linear-distance mass is negligible, but its
			// squared-distance mass dwarfs every real cluster.
			p = streamkm.Point{500 + rng.Float64()*1500, 500 + rng.Float64()*1500}
		} else {
			b := blobs[rng.Intn(len(blobs))]
			p = streamkm.Point{b[0] + rng.NormFloat64(), b[1] + rng.NormFloat64()}
		}
		means.Add(p)
		medians.Add(p)
	}

	report := func(name string, centers []streamkm.Point) {
		fmt.Printf("%s centers:\n", name)
		onBlobs := 0
		for _, c := range centers {
			best := math.Inf(1)
			for _, b := range blobs {
				d := math.Hypot(c[0]-b[0], c[1]-b[1])
				if d < best {
					best = d
				}
			}
			marker := "  <- dragged off by outliers"
			if best < 5 {
				marker = ""
				onBlobs++
			}
			fmt.Printf("   (%9.2f, %9.2f)%s\n", c[0], c[1], marker)
		}
		fmt.Printf("   %d of %d centers sit on real clusters\n\n", onBlobs, k)
	}
	report("k-means  (CC)", means.Centers())
	report("k-median (CC)", medians.Centers())

	fmt.Println("same stream, same coreset caching — the linear-distance objective")
	fmt.Println("keeps its centers on the true clusters despite the wild outliers.")
}
