// Comparison: every algorithm in the library, side by side, on one stream.
//
// This is a miniature of the paper's whole evaluation: stream a
// Covtype-shaped workload through Sequential, StreamKM++ (CT), CC, RCC and
// OnlineCC with queries every q points, then print accuracy (SSQ), update
// time, query time and memory — the four columns every design decision in
// the paper trades between.
//
// Run with:
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"os"

	"streamkm/internal/datagen"
	"streamkm/internal/experiments"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/workload"
)

func main() {
	const (
		n = 30000
		k = 20
		q = 100
	)
	ds := datagen.Covtype(n, 11)
	m := 20 * k

	fmt.Printf("dataset: %s-shaped, %d points, %d dims; k=%d, m=%d, query every %d points\n\n",
		ds.Name, ds.N(), ds.Dim, k, m, q)

	tb := metrics.NewTable("",
		"algorithm", "SSQ cost", "update/pt (µs)", "query/pt (µs)", "memory (pts)", "queries")
	for _, name := range experiments.AlgoNames {
		// PipelineOptions is the paper's query path: k-means++ seeding plus
		// Lloyd refinement on the assembled coreset at every query.
		alg, err := experiments.NewClusterer(name, k, m, n/m, 1.2, 1, kmeans.PipelineOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := workload.Run(alg, ds.Points, workload.FixedInterval{Q: q})
		cost := workload.FinalCost(res, ds.Points)
		tb.AddRow(name, cost,
			float64(res.UpdatePerPoint().Nanoseconds())/1e3,
			float64(res.QueryPerPoint().Nanoseconds())/1e3,
			res.PointsStored, res.Queries)
	}
	fmt.Println(tb.String())

	fmt.Println("what to look for (the paper's headline results):")
	fmt.Println("  - Sequential: fastest but the worst SSQ — no quality guarantee;")
	fmt.Println("  - CC/RCC: query time well under StreamKM++ at the same accuracy;")
	fmt.Println("  - OnlineCC: near-Sequential query speed with coreset accuracy;")
	fmt.Println("  - memory: StreamKM++ < CC ≈ OnlineCC < RCC, all tiny vs the stream.")
}
