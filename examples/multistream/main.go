// Parallel streams: clustering several substreams at once.
//
// Telemetry rarely arrives on one socket. This example runs four producer
// goroutines — say, four collectors in different regions — each feeding its
// own shard of a sharded clusterer. A monitoring goroutine issues global
// clustering queries concurrently. Per the coreset union property
// (Observation 1 in the paper), merging the shard summaries at query time
// gives a valid coreset of the combined stream, so the global centers match
// what a single-stream clusterer would have found.
//
// Run with:
//
//	go run ./examples/multistream
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"streamkm"
)

func main() {
	const (
		shards   = 4
		perShard = 25000
		k        = 5
	)
	s, err := streamkm.NewSharded(shards, streamkm.AlgoCC, streamkm.Config{K: k, Seed: 1})
	if err != nil {
		panic(err)
	}

	// Ground truth: 5 activity patterns shared by all regions.
	blobs := [][2]float64{{0, 0}, {40, 0}, {0, 40}, {40, 40}, {20, 20}}

	var produced int64
	var wg sync.WaitGroup
	start := time.Now()
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(10 + sh)))
			for i := 0; i < perShard; i++ {
				b := blobs[rng.Intn(len(blobs))]
				s.AddTo(sh, streamkm.Point{b[0] + rng.NormFloat64(), b[1] + rng.NormFloat64()})
				atomic.AddInt64(&produced, 1)
			}
		}(sh)
	}

	// Live monitoring: query while the producers are still running.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			n := atomic.LoadInt64(&produced)
			if n >= shards*perShard {
				return
			}
			centers := s.Centers()
			fmt.Printf("  live query at ~%6d points: %d centers\n", n, len(centers))
			time.Sleep(30 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-done

	centers := s.Centers()
	fmt.Printf("\n%s consumed %d points across %d shards in %v\n",
		s.Name(), shards*perShard, shards, time.Since(start).Round(time.Millisecond))
	fmt.Printf("memory: %d stored points total\n\nfinal centers:\n", s.PointsStored())
	for _, c := range centers {
		fmt.Printf("   (%6.2f, %6.2f)\n", c[0], c[1])
	}
	fmt.Println("\neach true pattern is recovered from the merged shard summaries.")
}
