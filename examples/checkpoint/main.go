// Checkpoint: survive a restart without replaying the stream.
//
// Long-running stream processors get redeployed, rescheduled and OOM-killed.
// Because a streaming clusterer's entire state is a few thousand weighted
// points, it can be checkpointed cheaply and restored instantly — no stream
// replay. This example clusters half a stream, snapshots to disk, "crashes",
// restores from the snapshot into a brand-new process state, finishes the
// stream, and shows the result matches an uninterrupted run.
//
// Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"streamkm"
)

func emit(rng *rand.Rand) streamkm.Point {
	blobs := [][2]float64{{0, 0}, {40, 0}, {20, 35}}
	b := blobs[rng.Intn(len(blobs))]
	return streamkm.Point{b[0] + rng.NormFloat64(), b[1] + rng.NormFloat64()}
}

func main() {
	const (
		k    = 3
		half = 15000
	)
	dir, err := os.MkdirTemp("", "streamkm-checkpoint")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "clusterer.skm")

	// --- Before the "crash": consume half the stream, checkpoint. ---
	rng := rand.New(rand.NewSource(1))
	c := streamkm.MustNew(streamkm.AlgoCC, streamkm.Config{K: k, Seed: 42})
	for i := 0; i < half; i++ {
		c.Add(emit(rng))
	}
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := streamkm.Save(f, c); err != nil {
		panic(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("checkpointed after %d points: %d bytes on disk (%d stored points)\n",
		half, info.Size(), c.PointsStored())

	// --- After the "crash": restore and finish the stream. ---
	f, err = os.Open(path)
	if err != nil {
		panic(err)
	}
	restored, err := streamkm.Load(f, streamkm.Config{Seed: 43})
	f.Close()
	if err != nil {
		panic(err)
	}
	var tail []streamkm.Point
	for i := 0; i < half; i++ {
		p := emit(rng)
		tail = append(tail, p)
		restored.Add(p)
	}
	centers := restored.Centers()
	fmt.Printf("restored %s finished the stream; %d centers:\n", restored.Name(), len(centers))
	for _, ctr := range centers {
		fmt.Printf("   (%6.2f, %6.2f)\n", ctr[0], ctr[1])
	}

	// --- Reference: the same stream without any interruption. ---
	rng2 := rand.New(rand.NewSource(1))
	ref := streamkm.MustNew(streamkm.AlgoCC, streamkm.Config{K: k, Seed: 42})
	for i := 0; i < 2*half; i++ {
		ref.Add(emit(rng2))
	}
	refCost := streamkm.Cost(tail, ref.Centers())
	restCost := streamkm.Cost(tail, centers)
	fmt.Printf("\nSSQ on the post-crash half: restored %.4g vs uninterrupted %.4g (ratio %.3f)\n",
		restCost, refCost, restCost/refCost)
	fmt.Println("the checkpointed run clusters as well as the uninterrupted one.")

	// --- The serving path: a Concurrent snapshot captures all P shards,
	// the routing cursor and the cached-centers entry in one envelope
	// (this is what streamkmd -checkpoint writes). ---
	conc := streamkm.MustNewConcurrent(streamkm.AlgoCC, 4, streamkm.Config{K: k, Seed: 7})
	for i := 0; i < half; i++ {
		conc.Add(emit(rng))
	}
	conc.Centers() // warm the cache so it travels with the snapshot
	var buf bytes.Buffer
	if err := conc.Snapshot(&buf); err != nil {
		panic(err)
	}
	conc2, err := streamkm.NewConcurrentFromSnapshot(&buf, streamkm.Config{Seed: 8})
	if err != nil {
		panic(err)
	}
	conc2.Centers() // answered from the snapshotted cache, no recomputation
	hits, misses := conc2.CacheStats()
	fmt.Printf("\nsharded snapshot: restored %s with %d points across %d shards; "+
		"first query: %d cache hit, %d misses\n",
		conc2.Name(), conc2.Count(), conc2.NumShards(), hits, misses)
}
