package streamkm

import (
	"sync"
	"testing"
)

func TestConcurrentBasic(t *testing.T) {
	pts := mixturePoints(4000, 10)
	c := MustNewConcurrent(AlgoCC, 4, Config{K: 3})
	if c.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", c.NumShards())
	}
	if c.K() != 3 {
		t.Fatalf("K = %d, want 3", c.K())
	}
	for i := 0; i < len(pts); i += 100 {
		c.AddBatch(pts[i : i+100])
	}
	if c.Count() != int64(len(pts)) {
		t.Fatalf("Count = %d, want %d", c.Count(), len(pts))
	}
	centers := c.Centers()
	if len(centers) != 3 {
		t.Fatalf("%d centers, want 3", len(centers))
	}
	batch := Cost(pts, KMeansPlusPlus(pts, 3, 11, 5, 20))
	if cost := Cost(pts, centers); cost > 3*batch {
		t.Errorf("sharded cost %v vs batch %v", cost, batch)
	}
	if c.PointsStored() <= 0 {
		t.Errorf("PointsStored = %d", c.PointsStored())
	}
	if c.Name() != "Sharded[4xCC]" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestConcurrentRejectsNonCoresetAlgos(t *testing.T) {
	for _, algo := range []Algo{AlgoOnlineCC, AlgoSequential, "Bogus"} {
		if _, err := NewConcurrent(algo, 2, Config{K: 3}); err == nil {
			t.Errorf("%s: expected error", algo)
		}
	}
	if _, err := NewConcurrent(AlgoCC, 0, Config{K: 3}); err == nil {
		t.Error("0 shards: expected error")
	}
	if _, err := NewConcurrent(AlgoCC, 2, Config{K: 0}); err == nil {
		t.Error("K=0: expected error")
	}
}

func TestMustNewConcurrentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewConcurrent(AlgoSequential, 2, Config{K: 3})
}

// TestConcurrentCacheFastPath pins the OnlineCC-style serving behavior:
// repeated queries against an unchanged (or barely-grown) stream are
// answered from the cache, and growth past Alpha invalidates it.
func TestConcurrentCacheFastPath(t *testing.T) {
	pts := mixturePoints(2000, 11)
	c := MustNewConcurrent(AlgoCC, 2, Config{K: 3, Alpha: 1.5})
	c.AddBatch(pts[:1000])

	first := c.Centers()
	if hits, misses := c.CacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("after first query: hits=%d misses=%d", hits, misses)
	}
	second := c.Centers() // unchanged stream: must be a hit
	if hits, _ := c.CacheStats(); hits != 1 {
		t.Fatalf("second query on unchanged stream did not hit the cache")
	}
	for i := range first {
		for j := range first[i] {
			if first[i][j] != second[i][j] {
				t.Fatal("cached centers differ from computed centers")
			}
		}
	}
	// A caller mutating its copy must not corrupt the cache.
	second[0][0] = 1e9
	third := c.Centers()
	if third[0][0] == 1e9 {
		t.Fatal("cache entry aliased into caller's slice")
	}

	c.AddBatch(pts[1000:1400]) // 1400 <= 1.5*1000: still fresh
	c.Centers()
	if _, misses := c.CacheStats(); misses != 1 {
		t.Fatalf("query within staleness bound recomputed (misses=%d)", misses)
	}
	c.AddBatch(pts[1400:2000]) // 2000 > 1.5*1000: stale
	c.Centers()
	if _, misses := c.CacheStats(); misses != 2 {
		t.Fatalf("query past staleness bound did not recompute (misses=%d)", misses)
	}
}

func TestConcurrentRefreshBypassesCache(t *testing.T) {
	c := MustNewConcurrent(AlgoCC, 2, Config{K: 2, BucketSize: 20})
	c.AddBatch(mixturePoints(200, 12))
	c.Centers()
	hits0, _ := c.CacheStats()
	if got := c.Refresh(); len(got) != 2 {
		t.Fatalf("Refresh returned %d centers", len(got))
	}
	// Refresh installs a new entry; the next query must hit it.
	c.Centers()
	if hits, _ := c.CacheStats(); hits != hits0+1 {
		t.Fatalf("query after Refresh missed the cache")
	}
}

func TestConcurrentEmptyStream(t *testing.T) {
	c := MustNewConcurrent(AlgoRCC, 3, Config{K: 5})
	if got := c.Centers(); len(got) != 0 {
		t.Fatalf("empty stream returned %d centers", len(got))
	}
	// The empty answer must not be served once points exist.
	c.AddBatch(mixturePoints(500, 13))
	if got := c.Centers(); len(got) != 5 {
		t.Fatalf("after ingest got %d centers, want 5", len(got))
	}
}

// TestConcurrentParallelIngestAndQuery drives N producer goroutines
// through Add/AddTo/AddBatch while queriers hammer Centers — the
// workload the type exists for. Run with -race.
func TestConcurrentParallelIngestAndQuery(t *testing.T) {
	const producers = 4
	const perProducer = 1500
	c := MustNewConcurrent(AlgoCC, producers, Config{K: 3, BucketSize: 30})

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pts := mixturePoints(perProducer, int64(100+w))
			for i, p := range pts {
				switch i % 3 {
				case 0:
					c.AddTo(w, p)
				case 1:
					c.Add(p)
				default:
					c.AddWeighted(p, 2)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < 3; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Centers()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	qwg.Wait()

	if c.Count() != producers*perProducer {
		t.Fatalf("Count = %d, want %d", c.Count(), producers*perProducer)
	}
	if got := c.Refresh(); len(got) != 3 {
		t.Fatalf("final query: %d centers, want 3", len(got))
	}
}
